#include "sim/tracer.h"

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "sim/clock.h"

namespace teleport::sim {
namespace {

TEST(TracerTest, SpanAndInstantAreRecorded) {
  Tracer t;
  t.Span("db", "Scan", 100, 50, kTrackCompute, "\"rows\":3");
  t.Instant("fabric", "PageFaultRequest", 120, kTrackFabric);
  ASSERT_EQ(t.events().size(), 2u);

  const TraceEvent& span = t.events()[0];
  EXPECT_EQ(span.phase, TraceEvent::Phase::kComplete);
  EXPECT_EQ(t.CatOf(span), "db");
  EXPECT_EQ(t.NameOf(span), "Scan");
  EXPECT_EQ(span.ts, 100);
  EXPECT_EQ(span.dur, 50);
  EXPECT_EQ(span.tid, kTrackCompute);
  EXPECT_EQ(span.args, "\"rows\":3");

  const TraceEvent& inst = t.events()[1];
  EXPECT_EQ(inst.phase, TraceEvent::Phase::kInstant);
  EXPECT_EQ(t.CatOf(inst), "fabric");
  EXPECT_EQ(inst.dur, 0);
}

TEST(TracerTest, NamesAreInternedOnce) {
  Tracer t;
  for (int i = 0; i < 100; ++i) t.Span("db", "Scan", i, 1, kTrackCompute);
  // Every event shares the same interned indices.
  const uint32_t cat = t.events()[0].cat;
  const uint32_t name = t.events()[0].name;
  for (const TraceEvent& ev : t.events()) {
    EXPECT_EQ(ev.cat, cat);
    EXPECT_EQ(ev.name, name);
  }
}

TEST(TracerTest, RollupAccumulatesSpanLatencies) {
  Tracer t;
  t.Span("db", "Scan", 0, 10, kTrackCompute);
  t.Span("db", "Scan", 10, 30, kTrackCompute);
  t.Span("db", "Join", 40, 5, kTrackCompute);
  const Histogram* scan = t.SpanLatency("db", "Scan");
  ASSERT_NE(scan, nullptr);
  EXPECT_EQ(scan->count(), 2u);
  EXPECT_EQ(scan->min(), 10);
  EXPECT_EQ(scan->max(), 30);
  ASSERT_NE(t.SpanLatency("db", "Join"), nullptr);
  EXPECT_EQ(t.SpanLatency("db", "Missing"), nullptr);
  // Instants never feed the rollup.
  t.Instant("db", "Mark", 50, kTrackCompute);
  EXPECT_EQ(t.SpanLatency("db", "Mark"), nullptr);
}

TEST(TracerTest, EventCapDropsEventsButRollupStaysComplete) {
  Tracer t;
  t.set_max_events(3);
  for (int i = 0; i < 10; ++i) t.Span("db", "Scan", i, 7, kTrackCompute);
  EXPECT_EQ(t.events().size(), 3u);
  EXPECT_EQ(t.dropped_events(), 7u);
  // The per-phase statistics still see every span.
  ASSERT_NE(t.SpanLatency("db", "Scan"), nullptr);
  EXPECT_EQ(t.SpanLatency("db", "Scan")->count(), 10u);
}

TEST(TracerTest, ResetClearsEverything) {
  Tracer t;
  t.set_max_events(1);
  t.Span("db", "Scan", 0, 10, kTrackCompute);
  t.Span("db", "Scan", 10, 10, kTrackCompute);  // dropped
  t.Reset();
  EXPECT_TRUE(t.events().empty());
  EXPECT_EQ(t.dropped_events(), 0u);
  EXPECT_EQ(t.SpanLatency("db", "Scan"), nullptr);
  // Reset keeps the cap; recording works again.
  t.Span("db", "Scan", 0, 10, kTrackCompute);
  EXPECT_EQ(t.events().size(), 1u);
}

TEST(TracerTest, TraceSpanGuardMeasuresTheClock) {
  Tracer t;
  VirtualClock clock;
  clock.Advance(1000);
  {
    TELEPORT_TRACE(&t, clock, "graph", "Gather", kTrackCompute);
    clock.Advance(250);
  }
  ASSERT_EQ(t.events().size(), 1u);
  EXPECT_EQ(t.events()[0].ts, 1000);
  EXPECT_EQ(t.events()[0].dur, 250);
  EXPECT_EQ(t.NameOf(t.events()[0]), "Gather");
}

TEST(TracerTest, NullTracerGuardIsSafeAndFree) {
  VirtualClock clock;
  {
    TELEPORT_TRACE(static_cast<Tracer*>(nullptr), clock, "db", "Scan",
                   kTrackCompute);
    clock.Advance(10);
  }
  // Nothing to assert beyond "did not crash": the guard must never touch
  // the clock.
  EXPECT_EQ(clock.now(), 10);
}

TEST(TracerTest, ChromeJsonIsDeterministic) {
  auto fill = [](Tracer& t) {
    t.Span("pushdown", "call", 0, 12345, kTrackCompute, "\"call\":0");
    t.Instant("coherence", "Invalidate", 42, kTrackCoherence, "\"page\":7");
    t.Span("db", "Scan\"weird\\name", 50, 1, kTrackCompute);
  };
  Tracer a;
  Tracer b;
  fill(a);
  fill(b);
  EXPECT_EQ(a.ToChromeJson(), b.ToChromeJson());
}

TEST(TracerTest, ChromeJsonShape) {
  Tracer t;
  t.Span("db", "Scan", 1234567, 890, kTrackCompute);
  const std::string json = t.ToChromeJson();
  // Microsecond timestamps via exact integer math: 1234567ns -> 1234.567us.
  EXPECT_NE(json.find("\"ts\":1234.567"), std::string::npos) << json;
  EXPECT_NE(json.find("\"dur\":0.890"), std::string::npos) << json;
  EXPECT_NE(json.find("\"displayTimeUnit\":\"ns\""), std::string::npos);
  // All four track-name metadata records are present.
  for (int tid = 0; tid < kNumTracks; ++tid) {
    EXPECT_NE(json.find("\"name\":\"" + std::string(TrackName(tid)) + "\""),
              std::string::npos)
        << TrackName(tid);
  }
}

TEST(TracerTest, WriteChromeJsonRoundTrips) {
  Tracer t;
  t.Span("mr", "Map", 0, 99, kTrackCompute);
  const std::string path = "tracer_test_roundtrip.trace.json";
  ASSERT_TRUE(t.WriteChromeJson(path));
  std::ifstream in(path, std::ios::binary);
  ASSERT_TRUE(in.good());
  std::stringstream ss;
  ss << in.rdbuf();
  EXPECT_EQ(ss.str(), t.ToChromeJson());
  in.close();
  std::remove(path.c_str());
}

TEST(TracerTest, WriteChromeJsonFailsOnBadPath) {
  Tracer t;
  EXPECT_FALSE(t.WriteChromeJson("no_such_dir/x/y/z.trace.json"));
}

TEST(TracerTest, TrackNamesAreStable) {
  EXPECT_EQ(TrackName(kTrackCompute), "compute");
  EXPECT_EQ(TrackName(kTrackMemoryPool), "memory-pool");
  EXPECT_EQ(TrackName(kTrackFabric), "fabric");
  EXPECT_EQ(TrackName(kTrackCoherence), "coherence");
  EXPECT_EQ(TrackName(99), "other");
}

}  // namespace
}  // namespace teleport::sim
