// End-to-end integration tests asserting the paper's core claims on small,
// fast configurations — the same shapes the bench binaries measure at
// scale, locked in as regression tests.

#include <gtest/gtest.h>

#include "bench/bench_util.h"
#include "db/advisor.h"
#include "dist/cost_model.h"

namespace teleport {
namespace {

// §1 / Fig 1b: TELEPORT's cost of scaling is far below the unmodified
// DDC's and lands in the range of distributed DBMSs.
TEST(PaperClaims, CostOfScalingComparableToDistributed) {
  bench::DeployOptions deploy;
  deploy.cache_fraction = 0.10;
  auto local = bench::MakeDb(ddc::Platform::kLocal, 2.0, deploy);
  const db::QueryResult r_local = db::RunQ6(*local.ctx, *local.database, {});
  auto base = bench::MakeDb(ddc::Platform::kBaseDdc, 2.0, deploy);
  const db::QueryResult r_ddc = db::RunQ6(*base.ctx, *base.database, {});
  auto tele = bench::MakeDb(ddc::Platform::kBaseDdc, 2.0, deploy);
  db::QueryOptions opts;
  opts.runtime = tele.runtime.get();
  opts.push_ops = db::DefaultTeleportOps("q6");
  const db::QueryResult r_tele = db::RunQ6(*tele.ctx, *tele.database, opts);

  const double ddc_cost = static_cast<double>(r_ddc.total_ns) /
                          static_cast<double>(r_local.total_ns);
  const double tele_cost = static_cast<double>(r_tele.total_ns) /
                           static_cast<double>(r_local.total_ns);
  EXPECT_GT(ddc_cost, 2.0);
  EXPECT_LT(tele_cost, ddc_cost / 1.5);
  EXPECT_LT(tele_cost, 3.0);  // in distributed-DBMS territory
}

// §2.3 / Fig 4: pushing a selection eliminates the data migration of
// shipping the whole table through the cache.
TEST(PaperClaims, SelectionPushdownEliminatesDataMigration) {
  auto base = bench::MakeDb(ddc::Platform::kBaseDdc, 2.0);
  const db::QueryResult r_ddc =
      db::RunQFilter(*base.ctx, *base.database, {});
  auto tele = bench::MakeDb(ddc::Platform::kBaseDdc, 2.0);
  db::QueryOptions opts;
  opts.runtime = tele.runtime.get();
  opts.push_ops = {"Selection"};
  const db::QueryResult r_tele =
      db::RunQFilter(*tele.ctx, *tele.database, opts);
  EXPECT_EQ(r_ddc.checksum, r_tele.checksum);
  EXPECT_LT(r_tele.Op("Selection").remote_bytes,
            r_ddc.Op("Selection").remote_bytes / 5);
}

// §5.2: Teleporting finalize/gather/scatter closes most of the GAS
// engine's disaggregation gap.
TEST(PaperClaims, GraphPushdownClosesTheGap) {
  auto local = bench::MakeGraph(ddc::Platform::kLocal, 10'000, 8);
  const graph::GasResult r_local = RunSssp(*local.ctx, local.graph, {});
  auto base = bench::MakeGraph(ddc::Platform::kBaseDdc, 10'000, 8);
  const graph::GasResult r_ddc = RunSssp(*base.ctx, base.graph, {});
  auto tele = bench::MakeGraph(ddc::Platform::kBaseDdc, 10'000, 8);
  graph::GasOptions opts;
  opts.runtime = tele.runtime.get();
  opts.push_phases = graph::DefaultTeleportPhases();
  const graph::GasResult r_tele = RunSssp(*tele.ctx, tele.graph, opts);
  EXPECT_EQ(r_local.checksum, r_tele.checksum);
  // TELEPORT recovers most of the gap between DDC and local.
  EXPECT_LT(r_tele.total_ns - r_local.total_ns,
            (r_ddc.total_ns - r_local.total_ns) / 3);
}

// §5.3: the map-shuffle sub-phase dominates map in a DDC and pushing just
// that sub-phase removes the bottleneck.
TEST(PaperClaims, MapShuffleIsTheMapReduceBottleneck) {
  auto base = bench::MakeMr(ddc::Platform::kBaseDdc, 1 << 20);
  const mr::MrResult r_ddc = RunWordCount(*base.ctx, base.corpus, {});
  const Nanos shuffle = r_ddc.Profile(mr::MrPhase::kMapShuffle).time_ns;
  const Nanos compute = r_ddc.Profile(mr::MrPhase::kMapCompute).time_ns;
  EXPECT_GT(shuffle, 3 * compute);

  auto tele = bench::MakeMr(ddc::Platform::kBaseDdc, 1 << 20);
  mr::MrOptions opts;
  opts.runtime = tele.runtime.get();
  opts.push_phases = mr::DefaultTeleportPhases(false);
  const mr::MrResult r_tele = RunWordCount(*tele.ctx, tele.corpus, opts);
  EXPECT_EQ(r_ddc.checksum, r_tele.checksum);
  EXPECT_LT(r_tele.Profile(mr::MrPhase::kMapShuffle).time_ns, shuffle / 3);
}

// §7.3: modest memory-pool CPUs suffice — TELEPORT still wins at a 20%
// clock, and faster pool cores plateau.
TEST(PaperClaims, ModestPoolCpusSuffice) {
  auto base = bench::MakeDb(ddc::Platform::kBaseDdc, 2.0);
  const db::QueryResult r_ddc = db::RunQ9(*base.ctx, *base.database, {});
  bench::DeployOptions slow;
  slow.memory_pool_clock_ratio = 0.2;
  auto tele = bench::MakeDb(ddc::Platform::kBaseDdc, 2.0, slow);
  db::QueryOptions opts;
  opts.runtime = tele.runtime.get();
  opts.push_ops = db::DefaultTeleportOps("q9");
  const db::QueryResult r_tele = db::RunQ9(*tele.ctx, *tele.database, opts);
  EXPECT_EQ(r_ddc.checksum, r_tele.checksum);
  EXPECT_LT(r_tele.total_ns * 2, r_ddc.total_ns);
}

// §5.1 future work, implemented here: the cost-based advisor beats
// pushing nothing and never picks a plan worse than the hand-tuned set by
// a wide margin.
TEST(PaperClaims, AdvisorIsCompetitiveWithHandTuning) {
  auto profile_dep = bench::MakeDb(ddc::Platform::kBaseDdc, 2.0);
  const db::QueryResult profile =
      db::RunQ9(*profile_dep.ctx, *profile_dep.database, {});
  const db::PushdownPlan plan =
      db::AdvisePushdown(profile, db::AdvisorParams{});

  auto hand = bench::MakeDb(ddc::Platform::kBaseDdc, 2.0);
  db::QueryOptions hopts;
  hopts.runtime = hand.runtime.get();
  hopts.push_ops = db::DefaultTeleportOps("q9");
  const Nanos hand_ns =
      db::RunQ9(*hand.ctx, *hand.database, hopts).total_ns;

  auto advised = bench::MakeDb(ddc::Platform::kBaseDdc, 2.0);
  db::QueryOptions aopts;
  aopts.runtime = advised.runtime.get();
  aopts.push_ops = plan.push_ops;
  const Nanos advised_ns =
      db::RunQ9(*advised.ctx, *advised.database, aopts).total_ns;

  EXPECT_LT(advised_ns, profile.total_ns);          // beats no pushdown
  EXPECT_LT(advised_ns, hand_ns + hand_ns / 2);     // near hand-tuned
}

// Fig 1b reference: the distributed models sit between local and the
// unmodified DDC.
TEST(PaperClaims, DistributedModelsBracketTeleport) {
  dist::WorkloadProfile w;
  w.local_time_ns = 20 * kSecond;
  w.bytes_scanned = 40ull << 30;
  w.bytes_shuffled = 4ull << 30;
  w.num_stages = 4;
  const double spark =
      dist::CostOfScaling(w, dist::DistEngine::kSparkLike, {});
  const double vertica =
      dist::CostOfScaling(w, dist::DistEngine::kVerticaLike, {});
  EXPECT_GT(spark, 1.0);
  EXPECT_GT(vertica, spark);
  EXPECT_LT(vertica, 5.4);  // below the paper's unmodified-DDC cost
}

}  // namespace
}  // namespace teleport
