// Tier-1 equivalence lock for the extent fast path at engine scale: each
// application engine (db / graph / mr) runs the same deployment twice —
// once with the fast path live (default) and once with the scalar data
// path forced — across three fault seeds (seed 0 fault-free, the others
// with the chaos injector armed). Answers, virtual clocks, and the full
// sim::Metrics must match bit for bit, and the coherence model checker
// rides along on every run (same event count on both paths, zero
// violations — which also asserts the TLB-shootdown invariant while the
// engines exercise the protocol).

#include <cstdint>
#include <string>

#include <gtest/gtest.h>

#include "bench/bench_util.h"
#include "db/query.h"
#include "graph/engine.h"
#include "mr/engine.h"
#include "net/faults.h"
#include "teleport/model_checker.h"
#include "teleport/pushdown.h"

namespace teleport {
namespace {

net::FaultSpec LossySpec() {
  net::FaultSpec spec;
  spec.drop_p = 0.12;
  spec.delay_p = 0.08;
  spec.delay_ns = 2 * kMicrosecond;
  spec.dup_p = 0.04;
  return spec;
}

void ArmChaos(ddc::MemorySystem& ms, tp::PushdownRuntime& runtime,
              net::FaultInjector& inj) {
  inj.SetSpecAll(LossySpec());
  ms.fabric().set_fault_injector(&inj);
  ms.set_retry_seed(0xe40);
  runtime.set_retry_seed(0xe41);
}

struct Observed {
  int64_t checksum = 0;
  Nanos elapsed = 0;
  Nanos clock_now = 0;
  std::string metrics;
  uint64_t checker_steps = 0;
};

Observed RunDb(uint64_t fault_seed, bool scalar) {
  auto d = bench::MakeDb(ddc::Platform::kBaseDdc, 0.2);
  if (scalar) d.ms->set_scalar_datapath(true);
  net::FaultInjector inj(fault_seed);
  if (fault_seed != 0) ArmChaos(*d.ms, *d.runtime, inj);
  tp::ModelChecker checker(d.ms.get(), tp::ModelChecker::OnViolation::kRecord);
  db::QueryOptions opts;
  opts.runtime = d.runtime.get();
  opts.push_ops = db::DefaultTeleportOps("q6");
  const db::QueryResult r = db::RunQ6(*d.ctx, *d.database, opts);
  Observed o;
  o.checksum = r.checksum;
  o.elapsed = r.total_ns;
  o.clock_now = d.ctx->now();
  o.metrics = d.ctx->metrics().ToString();
  o.checker_steps = checker.steps();
  EXPECT_EQ(checker.Finish(), 0u);
  return o;
}

Observed RunGraph(uint64_t fault_seed, bool scalar) {
  auto d = bench::MakeGraph(ddc::Platform::kBaseDdc, 1500, 6);
  if (scalar) d.ms->set_scalar_datapath(true);
  net::FaultInjector inj(fault_seed);
  if (fault_seed != 0) ArmChaos(*d.ms, *d.runtime, inj);
  tp::ModelChecker checker(d.ms.get(), tp::ModelChecker::OnViolation::kRecord);
  graph::GasOptions opts;
  opts.runtime = d.runtime.get();
  opts.push_phases = graph::DefaultTeleportPhases();
  const graph::GasResult r = graph::RunSssp(*d.ctx, d.graph, opts);
  Observed o;
  o.checksum = r.checksum;
  o.elapsed = r.total_ns;
  o.clock_now = d.ctx->now();
  o.metrics = d.ctx->metrics().ToString();
  o.checker_steps = checker.steps();
  EXPECT_EQ(checker.Finish(), 0u);
  return o;
}

Observed RunMr(uint64_t fault_seed, bool scalar) {
  auto d = bench::MakeMr(ddc::Platform::kBaseDdc, 192 << 10);
  if (scalar) d.ms->set_scalar_datapath(true);
  net::FaultInjector inj(fault_seed);
  if (fault_seed != 0) ArmChaos(*d.ms, *d.runtime, inj);
  tp::ModelChecker checker(d.ms.get(), tp::ModelChecker::OnViolation::kRecord);
  mr::MrOptions opts;
  opts.runtime = d.runtime.get();
  opts.push_phases = mr::DefaultTeleportPhases(/*grep=*/false);
  const mr::MrResult r = mr::RunWordCount(*d.ctx, d.corpus, opts);
  Observed o;
  o.checksum = r.checksum;
  o.elapsed = r.total_ns;
  o.clock_now = d.ctx->now();
  o.metrics = d.ctx->metrics().ToString();
  o.checker_steps = checker.steps();
  EXPECT_EQ(checker.Finish(), 0u);
  return o;
}

using Runner = Observed (*)(uint64_t, bool);

class BulkEquivalenceTest : public ::testing::TestWithParam<Runner> {};

TEST_P(BulkEquivalenceTest, FastAndScalarPathsMatchBitForBit) {
  Runner run = GetParam();
  // Seed 0 is fault-free; the other two arm the lossy fabric.
  for (const uint64_t seed : {0u, 5u, 13u}) {
    const Observed fast = run(seed, /*scalar=*/false);
    const Observed slow = run(seed, /*scalar=*/true);
    EXPECT_EQ(fast.checksum, slow.checksum) << "seed " << seed;
    EXPECT_EQ(fast.elapsed, slow.elapsed) << "seed " << seed;
    EXPECT_EQ(fast.clock_now, slow.clock_now) << "seed " << seed;
    EXPECT_EQ(fast.metrics, slow.metrics) << "seed " << seed;
    EXPECT_EQ(fast.checker_steps, slow.checker_steps) << "seed " << seed;
    ASSERT_GT(fast.elapsed, 0) << "seed " << seed;
  }
}

INSTANTIATE_TEST_SUITE_P(AllEngines, BulkEquivalenceTest,
                         ::testing::Values(&RunDb, &RunGraph, &RunMr));

}  // namespace
}  // namespace teleport
