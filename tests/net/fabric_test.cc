#include "net/fabric.h"

#include <algorithm>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "sim/clock.h"
#include "sim/interleaver.h"

namespace teleport::net {
namespace {

sim::CostParams TestParams() {
  sim::CostParams p;
  p.net_latency_ns = 1000;
  p.net_bytes_per_ns = 1.0;  // 1 byte/ns for easy arithmetic
  return p;
}

TEST(ChannelTest, DeliveryIsLatencyPlusSerialization) {
  Channel ch;
  const auto p = TestParams();
  EXPECT_EQ(ch.Send(0, 500, p), 1500);
  EXPECT_EQ(ch.messages_sent(), 1u);
  EXPECT_EQ(ch.bytes_sent(), 500u);
}

TEST(ChannelTest, FifoDeliveryNeverReorders) {
  // A small message sent after a big one must not arrive earlier (§4.1
  // relies on FIFO reliable delivery).
  Channel ch;
  const auto p = TestParams();
  const Nanos big = ch.Send(0, 100000, p);    // arrives at 101000
  const Nanos small = ch.Send(10, 8, p);      // would arrive at 1018
  EXPECT_GE(small, big);
}

TEST(ChannelTest, FifoPropertyRandomized) {
  Channel ch;
  const auto p = TestParams();
  Rng rng(42);
  Nanos now = 0;
  Nanos prev_delivery = 0;
  for (int i = 0; i < 1000; ++i) {
    now += static_cast<Nanos>(rng.Uniform(500));
    const Nanos d = ch.Send(now, rng.Uniform(10000), p);
    EXPECT_GE(d, prev_delivery);
    EXPECT_GE(d, now + p.net_latency_ns);
    prev_delivery = d;
  }
}

// Regression for the out-of-order-time clamp bug: a cooperatively
// scheduled task whose clock lags the channel's newest committed send used
// to escape the FIFO clamp entirely, so a transfer overlapping one already
// in flight could be delivered first.
TEST(ChannelTest, LaggingSendOverlappingInFlightTransferQueuesBehindIt) {
  Channel ch;
  const auto p = TestParams();
  // Task A (clock ahead) commits a transfer occupying [100, 101100].
  const Nanos big = ch.Send(100, 100000, p);
  EXPECT_EQ(big, 101100);
  // Task B runs next in host order with its clock slightly behind. Its
  // 50 KB transfer would still be on the wire at t=100, overlapping the
  // committed one; the serial wire queues it behind (the seed delivered it
  // at 51095, overtaking the message already in flight).
  const Nanos overlap = ch.Send(95, 50000, p);
  EXPECT_GE(overlap, big);
}

TEST(ChannelTest, LaggingSendOnProvablyIdleWireKeepsItsOwnTimeline) {
  Channel ch;
  const auto p = TestParams();
  // One transfer committed late on the timeline: occupies [100000, 101008].
  EXPECT_EQ(ch.Send(100000, 8, p), 101008);
  // A lagging task's message that completes before that transfer even
  // began used the wire while it was provably idle; clamping it to the
  // committed delivery would serialize logically-concurrent flows (and,
  // e.g., delay a try_cancel behind the 50 ms call it is cancelling).
  EXPECT_EQ(ch.Send(10, 8, p), 1018);
}

namespace {

/// Interleaver task that fires sends on a shared channel at its own
/// virtual pace, recording (send, raw transfer, delivery) triples.
class SenderTask : public sim::Task {
 public:
  struct Sent {
    Nanos at;
    Nanos raw_delivery;  ///< at + NetTransfer, before FIFO clamping
    Nanos delivery;
  };

  SenderTask(Channel* ch, const sim::CostParams* params, Nanos quantum,
             uint64_t bytes, int sends, std::vector<Sent>* log)
      : ch_(ch),
        params_(params),
        quantum_(quantum),
        bytes_(bytes),
        sends_(sends),
        log_(log) {}

  Nanos clock() const override { return clock_.now(); }
  bool done() const override { return sends_ == 0; }
  void Step() override {
    clock_.Advance(quantum_);
    const Nanos raw = clock_.now() + params_->NetTransfer(bytes_);
    const Nanos d = ch_->Send(clock_.now(), bytes_, *params_);
    log_->push_back({clock_.now(), raw, d});
    --sends_;
  }

 private:
  Channel* ch_;
  const sim::CostParams* params_;
  Nanos quantum_;
  uint64_t bytes_;
  int sends_;
  std::vector<Sent>* log_;
  sim::VirtualClock clock_;
};

}  // namespace

// Interleaver-driven regression (the ISSUE's reproducer shape): two tasks
// with skewed clocks share one channel under RandomSchedule, so sends
// reach the channel out of virtual-time order. The per-channel FIFO
// contract: a send whose transfer would still be on the wire at the
// newest committed send's start never beats a committed delivery.
TEST(ChannelTest, RandomScheduleInterleavingPreservesFifoContract) {
  const auto p = TestParams();
  for (uint64_t seed = 1; seed <= 20; ++seed) {
    Channel ch;
    std::vector<SenderTask::Sent> log;
    // A fast-clocked task with big messages and a slow-clocked task with
    // small ones maximize send/virtual-time inversions.
    SenderTask big(&ch, &p, /*quantum=*/50'000, /*bytes=*/100'000,
                   /*sends=*/20, &log);
    SenderTask small(&ch, &p, /*quantum=*/7'000, /*bytes=*/500, /*sends=*/20,
                     &log);
    sim::Interleaver il;
    il.Add(&big);
    il.Add(&small);
    sim::RandomSchedule schedule(seed);
    il.set_schedule(&schedule);
    il.Run();

    Nanos newest_send = 0;
    Nanos newest_delivery = 0;
    for (const SenderTask::Sent& s : log) {
      if (s.raw_delivery >= newest_send) {
        // Overlaps (or follows) committed wire usage: must queue.
        EXPECT_GE(s.delivery, newest_delivery)
            << "seed " << seed << ": send at " << s.at
            << " overtook an in-flight transfer";
      } else {
        // Provably idle window: keeps its own timeline, unclamped.
        EXPECT_EQ(s.delivery, s.raw_delivery) << "seed " << seed;
      }
      newest_send = std::max(newest_send, s.at);
      newest_delivery = std::max(newest_delivery, s.delivery);
    }
  }
}

TEST(ChannelTest, ResetClearsState) {
  Channel ch;
  const auto p = TestParams();
  ch.Send(0, 100, p);
  ch.Reset();
  EXPECT_EQ(ch.messages_sent(), 0u);
  EXPECT_EQ(ch.last_delivery(), 0);
}

TEST(FabricTest, RoundTripAddsHandlerTime) {
  Fabric f(TestParams());
  // req: 0 -> 1064 (64B); handler 936 -> reply sent at 2000; 64B -> 3064.
  const Nanos done = f.RoundTripFromCompute(0, 64, 64, 936);
  EXPECT_EQ(done, 3064);
  EXPECT_EQ(f.total_messages(), 2u);
  EXPECT_EQ(f.total_bytes(), 128u);
}

TEST(FabricTest, RoundTripFromMemoryUsesOppositeChannels) {
  Fabric f(TestParams());
  f.RoundTripFromMemory(0, 64, 64, 0);
  EXPECT_EQ(f.memory_to_compute().messages_sent(), 1u);
  EXPECT_EQ(f.compute_to_memory().messages_sent(), 1u);
}

TEST(FabricTest, DirectionsAreIndependentChannels) {
  Fabric f(TestParams());
  f.SendToMemory(0, 1000000);  // saturate one direction
  // The reverse direction is unaffected by the forward queue.
  EXPECT_EQ(f.SendToCompute(0, 8), 1008);
}

TEST(FabricTest, ReachabilityFlag) {
  Fabric f(TestParams());
  EXPECT_TRUE(f.reachable());
  f.set_reachable(false);
  EXPECT_FALSE(f.reachable());
  f.Reset();
  EXPECT_TRUE(f.reachable());
}

TEST(FabricTest, MessageKindNamesAreStable) {
  EXPECT_EQ(MessageKindToString(MessageKind::kPushdownRequest),
            "PushdownRequest");
  EXPECT_EQ(MessageKindToString(MessageKind::kCoherenceRequest),
            "CoherenceRequest");
  EXPECT_EQ(MessageKindToString(MessageKind::kHeartbeat), "Heartbeat");
}

TEST(FabricTest, PaperLatencyBandwidth) {
  // With the paper's constants, a 4 KiB page fetch round trip costs a few
  // microseconds: 1.2us + ~9ns (64B) + handler + 1.2us + ~585ns (4KiB).
  Fabric f(sim::CostParams::Default());
  const Nanos done =
      f.RoundTripFromCompute(0, 64, 4096 + 64, /*handler_ns=*/900);
  EXPECT_GT(done, 3'000);
  EXPECT_LT(done, 5'000);
}

}  // namespace
}  // namespace teleport::net
