#include "net/fabric.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace teleport::net {
namespace {

sim::CostParams TestParams() {
  sim::CostParams p;
  p.net_latency_ns = 1000;
  p.net_bytes_per_ns = 1.0;  // 1 byte/ns for easy arithmetic
  return p;
}

TEST(ChannelTest, DeliveryIsLatencyPlusSerialization) {
  Channel ch;
  const auto p = TestParams();
  EXPECT_EQ(ch.Send(0, 500, p), 1500);
  EXPECT_EQ(ch.messages_sent(), 1u);
  EXPECT_EQ(ch.bytes_sent(), 500u);
}

TEST(ChannelTest, FifoDeliveryNeverReorders) {
  // A small message sent after a big one must not arrive earlier (§4.1
  // relies on FIFO reliable delivery).
  Channel ch;
  const auto p = TestParams();
  const Nanos big = ch.Send(0, 100000, p);    // arrives at 101000
  const Nanos small = ch.Send(10, 8, p);      // would arrive at 1018
  EXPECT_GE(small, big);
}

TEST(ChannelTest, FifoPropertyRandomized) {
  Channel ch;
  const auto p = TestParams();
  Rng rng(42);
  Nanos now = 0;
  Nanos prev_delivery = 0;
  for (int i = 0; i < 1000; ++i) {
    now += static_cast<Nanos>(rng.Uniform(500));
    const Nanos d = ch.Send(now, rng.Uniform(10000), p);
    EXPECT_GE(d, prev_delivery);
    EXPECT_GE(d, now + p.net_latency_ns);
    prev_delivery = d;
  }
}

TEST(ChannelTest, ResetClearsState) {
  Channel ch;
  const auto p = TestParams();
  ch.Send(0, 100, p);
  ch.Reset();
  EXPECT_EQ(ch.messages_sent(), 0u);
  EXPECT_EQ(ch.last_delivery(), 0);
}

TEST(FabricTest, RoundTripAddsHandlerTime) {
  Fabric f(TestParams());
  // req: 0 -> 1064 (64B); handler 936 -> reply sent at 2000; 64B -> 3064.
  const Nanos done = f.RoundTripFromCompute(0, 64, 64, 936);
  EXPECT_EQ(done, 3064);
  EXPECT_EQ(f.total_messages(), 2u);
  EXPECT_EQ(f.total_bytes(), 128u);
}

TEST(FabricTest, RoundTripFromMemoryUsesOppositeChannels) {
  Fabric f(TestParams());
  f.RoundTripFromMemory(0, 64, 64, 0);
  EXPECT_EQ(f.memory_to_compute().messages_sent(), 1u);
  EXPECT_EQ(f.compute_to_memory().messages_sent(), 1u);
}

TEST(FabricTest, DirectionsAreIndependentChannels) {
  Fabric f(TestParams());
  f.SendToMemory(0, 1000000);  // saturate one direction
  // The reverse direction is unaffected by the forward queue.
  EXPECT_EQ(f.SendToCompute(0, 8), 1008);
}

TEST(FabricTest, ReachabilityFlag) {
  Fabric f(TestParams());
  EXPECT_TRUE(f.reachable());
  f.set_reachable(false);
  EXPECT_FALSE(f.reachable());
  f.Reset();
  EXPECT_TRUE(f.reachable());
}

TEST(FabricTest, MessageKindNamesAreStable) {
  EXPECT_EQ(MessageKindToString(MessageKind::kPushdownRequest),
            "PushdownRequest");
  EXPECT_EQ(MessageKindToString(MessageKind::kCoherenceRequest),
            "CoherenceRequest");
  EXPECT_EQ(MessageKindToString(MessageKind::kHeartbeat), "Heartbeat");
}

TEST(FabricTest, PaperLatencyBandwidth) {
  // With the paper's constants, a 4 KiB page fetch round trip costs a few
  // microseconds: 1.2us + ~9ns (64B) + handler + 1.2us + ~585ns (4KiB).
  Fabric f(sim::CostParams::Default());
  const Nanos done =
      f.RoundTripFromCompute(0, 64, 4096 + 64, /*handler_ns=*/900);
  EXPECT_GT(done, 3'000);
  EXPECT_LT(done, 5'000);
}

}  // namespace
}  // namespace teleport::net
