#include "net/fabric.h"

#include <algorithm>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "sim/clock.h"
#include "sim/interleaver.h"

namespace teleport::net {
namespace {

sim::CostParams TestParams() {
  sim::CostParams p;
  p.net_latency_ns = 1000;
  p.net_bytes_per_ns = 1.0;  // 1 byte/ns for easy arithmetic
  return p;
}

TEST(ChannelTest, DeliveryIsLatencyPlusSerialization) {
  Channel ch;
  const auto p = TestParams();
  EXPECT_EQ(ch.Send(0, 500, p), 1500);
  EXPECT_EQ(ch.messages_sent(), 1u);
  EXPECT_EQ(ch.bytes_sent(), 500u);
}

TEST(ChannelTest, FifoDeliveryNeverReorders) {
  // A small message sent after a big one must not arrive earlier (§4.1
  // relies on FIFO reliable delivery).
  Channel ch;
  const auto p = TestParams();
  const Nanos big = ch.Send(0, 100000, p);    // arrives at 101000
  const Nanos small = ch.Send(10, 8, p);      // would arrive at 1018
  EXPECT_GE(small, big);
}

TEST(ChannelTest, FifoPropertyRandomized) {
  Channel ch;
  const auto p = TestParams();
  Rng rng(42);
  Nanos now = 0;
  Nanos prev_delivery = 0;
  for (int i = 0; i < 1000; ++i) {
    now += static_cast<Nanos>(rng.Uniform(500));
    const Nanos d = ch.Send(now, rng.Uniform(10000), p);
    EXPECT_GE(d, prev_delivery);
    EXPECT_GE(d, now + p.net_latency_ns);
    prev_delivery = d;
  }
}

// Regression for the out-of-order-time clamp bug: a cooperatively
// scheduled task whose clock lags the channel's newest committed send used
// to escape the FIFO clamp entirely, so a transfer overlapping one already
// in flight could be delivered first.
TEST(ChannelTest, LaggingSendOverlappingInFlightTransferQueuesBehindIt) {
  Channel ch;
  const auto p = TestParams();
  // Task A (clock ahead) commits a transfer occupying [100, 101100].
  const Nanos big = ch.Send(100, 100000, p);
  EXPECT_EQ(big, 101100);
  // Task B runs next in host order with its clock slightly behind. Its
  // 50 KB transfer would still be on the wire at t=100, overlapping the
  // committed one; the serial wire queues it behind (the seed delivered it
  // at 51095, overtaking the message already in flight).
  const Nanos overlap = ch.Send(95, 50000, p);
  EXPECT_GE(overlap, big);
}

TEST(ChannelTest, LaggingSendOnProvablyIdleWireKeepsItsOwnTimeline) {
  Channel ch;
  const auto p = TestParams();
  // One transfer committed late on the timeline: occupies [100000, 101008].
  EXPECT_EQ(ch.Send(100000, 8, p), 101008);
  // A lagging task's message that completes before that transfer even
  // began used the wire while it was provably idle; clamping it to the
  // committed delivery would serialize logically-concurrent flows (and,
  // e.g., delay a try_cancel behind the 50 ms call it is cancelling).
  EXPECT_EQ(ch.Send(10, 8, p), 1018);
}

namespace {

/// Interleaver task that fires sends on a shared channel at its own
/// virtual pace, recording (send, raw transfer, delivery) triples.
class SenderTask : public sim::Task {
 public:
  struct Sent {
    Nanos at;
    Nanos raw_delivery;  ///< at + NetTransfer, before FIFO clamping
    Nanos delivery;
  };

  SenderTask(Channel* ch, const sim::CostParams* params, Nanos quantum,
             uint64_t bytes, int sends, std::vector<Sent>* log)
      : ch_(ch),
        params_(params),
        quantum_(quantum),
        bytes_(bytes),
        sends_(sends),
        log_(log) {}

  Nanos clock() const override { return clock_.now(); }
  bool done() const override { return sends_ == 0; }
  void Step() override {
    clock_.Advance(quantum_);
    const Nanos raw = clock_.now() + params_->NetTransfer(bytes_);
    const Nanos d = ch_->Send(clock_.now(), bytes_, *params_);
    log_->push_back({clock_.now(), raw, d});
    --sends_;
  }

 private:
  Channel* ch_;
  const sim::CostParams* params_;
  Nanos quantum_;
  uint64_t bytes_;
  int sends_;
  std::vector<Sent>* log_;
  sim::VirtualClock clock_;
};

}  // namespace

// Interleaver-driven regression (the ISSUE's reproducer shape): two tasks
// with skewed clocks share one channel under RandomSchedule, so sends
// reach the channel out of virtual-time order. The per-channel FIFO
// contract: a send whose transfer would still be on the wire at the
// newest committed send's start never beats a committed delivery.
TEST(ChannelTest, RandomScheduleInterleavingPreservesFifoContract) {
  const auto p = TestParams();
  for (uint64_t seed = 1; seed <= 20; ++seed) {
    Channel ch;
    std::vector<SenderTask::Sent> log;
    // A fast-clocked task with big messages and a slow-clocked task with
    // small ones maximize send/virtual-time inversions.
    SenderTask big(&ch, &p, /*quantum=*/50'000, /*bytes=*/100'000,
                   /*sends=*/20, &log);
    SenderTask small(&ch, &p, /*quantum=*/7'000, /*bytes=*/500, /*sends=*/20,
                     &log);
    sim::Interleaver il;
    il.Add(&big);
    il.Add(&small);
    sim::RandomSchedule schedule(seed);
    il.set_schedule(&schedule);
    il.Run();

    Nanos newest_send = 0;
    Nanos newest_delivery = 0;
    for (const SenderTask::Sent& s : log) {
      if (s.raw_delivery >= newest_send) {
        // Overlaps (or follows) committed wire usage: must queue.
        EXPECT_GE(s.delivery, newest_delivery)
            << "seed " << seed << ": send at " << s.at
            << " overtook an in-flight transfer";
      } else {
        // Provably idle window: keeps its own timeline, unclamped.
        EXPECT_EQ(s.delivery, s.raw_delivery) << "seed " << seed;
      }
      newest_send = std::max(newest_send, s.at);
      newest_delivery = std::max(newest_delivery, s.delivery);
    }
  }
}

TEST(ChannelTest, ResetClearsState) {
  Channel ch;
  const auto p = TestParams();
  ch.Send(0, 100, p);
  ch.Reset();
  EXPECT_EQ(ch.messages_sent(), 0u);
  EXPECT_EQ(ch.last_delivery(), 0);
}

TEST(FabricTest, RoundTripAddsHandlerTime) {
  Fabric f(TestParams());
  // req: 0 -> 1064 (64B); handler 936 -> reply sent at 2000; 64B -> 3064.
  const Nanos done = f.RoundTripFromCompute(0, 64, 64, 936);
  EXPECT_EQ(done, 3064);
  EXPECT_EQ(f.total_messages(), 2u);
  EXPECT_EQ(f.total_bytes(), 128u);
}

TEST(FabricTest, RoundTripFromMemoryUsesOppositeChannels) {
  Fabric f(TestParams());
  f.RoundTripFromMemory(0, 64, 64, 0);
  EXPECT_EQ(f.memory_to_compute().messages_sent(), 1u);
  EXPECT_EQ(f.compute_to_memory().messages_sent(), 1u);
}

TEST(FabricTest, DirectionsAreIndependentChannels) {
  Fabric f(TestParams());
  f.SendToMemory(0, 1000000);  // saturate one direction
  // The reverse direction is unaffected by the forward queue.
  EXPECT_EQ(f.SendToCompute(0, 8), 1008);
}

TEST(FabricTest, ReachabilityFlag) {
  Fabric f(TestParams());
  EXPECT_TRUE(f.reachable());
  f.set_reachable(false);
  EXPECT_FALSE(f.reachable());
  f.Reset();
  EXPECT_TRUE(f.reachable());
}

TEST(FabricTest, MessageKindNamesAreStable) {
  EXPECT_EQ(MessageKindToString(MessageKind::kPushdownRequest),
            "PushdownRequest");
  EXPECT_EQ(MessageKindToString(MessageKind::kCoherenceRequest),
            "CoherenceRequest");
  EXPECT_EQ(MessageKindToString(MessageKind::kHeartbeat), "Heartbeat");
}

TEST(FabricTest, PaperLatencyBandwidth) {
  // With the paper's constants, a 4 KiB page fetch round trip costs a few
  // microseconds: 1.2us + ~9ns (64B) + handler + 1.2us + ~585ns (4KiB).
  Fabric f(sim::CostParams::Default());
  const Nanos done =
      f.RoundTripFromCompute(0, 64, 4096 + 64, /*handler_ns=*/900);
  EXPECT_GT(done, 3'000);
  EXPECT_LT(done, 5'000);
}

// --- PR9: contended backends ----------------------------------------------

TEST(FabricBackendTest, NamesAreStable) {
  EXPECT_EQ(BackendToString(Backend::kIdeal), "ideal");
  EXPECT_EQ(BackendToString(Backend::kQueuedRdma), "queued_rdma");
  EXPECT_EQ(BackendToString(Backend::kSmartNic), "smartnic");
}

TEST(FabricBackendTest, IdealLeavesQueueMachineryUntouched) {
  // The default backend must not move any PR9 counter: pre-PR9 goldens are
  // locked against this.
  Fabric f(TestParams());
  ASSERT_EQ(f.backend(), Backend::kIdeal);
  EXPECT_EQ(f.SendToMemory(0, 500), 1500);  // the PR1 number, unchanged
  f.RoundTripFromCompute(0, 64, 64, 936);
  EXPECT_EQ(f.QueueBacklogNs(0), 0);
  EXPECT_EQ(f.doorbells(), 0u);
  EXPECT_EQ(f.coalesced_doorbells(), 0u);
  EXPECT_EQ(f.sg_sends(), 0u);
  EXPECT_EQ(f.smartnic_offloads(), 0u);
  EXPECT_EQ(f.queued_sends_of(MessageKind::kPageReturn), 0u);
  EXPECT_EQ(f.QueueBreakdownToString(), "fabricq{}");
}

TEST(FabricBackendTest, QueuedSingleFlowIsIdealPlusVerbOverhead) {
  // An uncontended queued send pays exactly the verb submission on top of
  // the ideal wire: submit = 0 + 250, start = 250 (every queue idle),
  // delivery = 250 + max(500/1.0, 500/12.5, 500/10.0) + 1000.
  Fabric f(TestParams());
  f.set_backend(Backend::kQueuedRdma);
  EXPECT_EQ(f.SendToMemory(0, 500), 1750);
  EXPECT_EQ(f.doorbells(), 1u);
  EXPECT_EQ(f.coalesced_doorbells(), 0u);
  EXPECT_EQ(f.queued_sends_of(MessageKind::kPageReturn), 0u);
}

TEST(FabricBackendTest, DoorbellBatchingCoalescesTheSecondVerb) {
  Fabric f(TestParams());
  f.set_backend(Backend::kQueuedRdma);
  f.SendToMemory(0, 500);
  // Second send inside the 400 ns batch window: no second verb overhead,
  // but it queues behind the first transfer's committed link residency
  // (busy until 750) — wait = 750, delivery = 750 + 500 + 1000.
  EXPECT_EQ(f.SendToMemory(100, 500), 2250);
  EXPECT_EQ(f.doorbells(), 1u);
  EXPECT_EQ(f.coalesced_doorbells(), 1u);
  EXPECT_EQ(f.queued_sends_of(MessageKind::kPageReturn), 1u);
  EXPECT_EQ(f.queue_wait_of(MessageKind::kPageReturn), 650);
  EXPECT_GE(f.peak_queue_depth_of(MessageKind::kPageReturn), 2u);
}

TEST(FabricBackendTest, SharedControllerInflatesNeighborLatency) {
  // Two compute nodes, one shard: node 0's burst occupies the shard
  // controller (100 kB at 10 B/ns = 10 us), so node 1's small send on its
  // own otherwise-idle link starts only when the controller frees up. Under
  // kIdeal the links are fully independent and the neighbor is unaffected.
  const auto p = TestParams();
  Fabric contended(p, /*compute_nodes=*/2, /*memory_nodes=*/1);
  contended.set_backend(Backend::kQueuedRdma);
  contended.SendToMemory(Link{0, 0}, 0, 100'000);
  const Nanos with_burst = contended.SendToMemory(Link{1, 0}, 0, 500);

  Fabric quiet(p, 2, 1);
  quiet.set_backend(Backend::kQueuedRdma);
  const Nanos without_burst = quiet.SendToMemory(Link{1, 0}, 0, 500);

  EXPECT_EQ(without_burst, 1750);
  EXPECT_EQ(with_burst, 11'750);  // controller busy until 250 + 10'000

  Fabric ideal(p, 2, 1);
  ideal.SendToMemory(Link{0, 0}, 0, 100'000);
  EXPECT_EQ(ideal.SendToMemory(Link{1, 0}, 0, 500), 1500);  // unaffected
}

TEST(FabricBackendTest, SharedNicCouplesOneNodesLinks) {
  // One compute node, two shards: the node's NIC (12.5 B/ns) serves both
  // links, so a burst to shard 0 delays a send to shard 1 even though the
  // per-link wires are disjoint.
  const auto p = TestParams();
  Fabric f(p, /*compute_nodes=*/1, /*memory_nodes=*/2);
  f.set_backend(Backend::kQueuedRdma);
  f.SendToMemory(Link{0, 0}, 0, 100'000);  // NIC busy until 250 + 8'000
  const Nanos d = f.SendToMemory(Link{0, 1}, 0, 500);
  EXPECT_EQ(d, 8250 + 500 + 1000);
}

TEST(FabricBackendTest, ScatterGatherMatchesSingleSendUnderIdeal) {
  const std::vector<uint64_t> segments{64, 4096, 4096};
  Fabric f(TestParams());
  const Nanos gathered = f.SendGatherToMemory(Link{}, 0, segments,
                                              MessageKind::kSyncmem);
  Fabric g(TestParams());
  const Nanos single =
      g.SendToMemory(Link{}, 0, 64 + 4096 + 4096, MessageKind::kSyncmem);
  EXPECT_EQ(gathered, single);
  EXPECT_EQ(f.sg_sends(), 0u);  // kIdeal: no SG accounting, goldens locked
}

TEST(FabricBackendTest, ScatterGatherRidesOneDoorbellUnderQueued) {
  Fabric f(TestParams());
  f.set_backend(Backend::kQueuedRdma);
  const std::vector<uint64_t> segments{64, 4096, 4096};
  f.SendGatherToMemory(Link{}, 0, segments, MessageKind::kSyncmem);
  EXPECT_EQ(f.sg_sends(), 1u);
  EXPECT_EQ(f.sg_segments(), 3u);
  EXPECT_EQ(f.doorbells(), 1u);  // one verb for the whole gather list
}

TEST(FabricBackendTest, SmartNicOffloadsCoherenceAndSmallProbesOnly) {
  Fabric f(TestParams());
  // Predicate is backend-gated: everything is host-path under kQueuedRdma.
  f.set_backend(Backend::kQueuedRdma);
  EXPECT_FALSE(f.SmartNicOffloaded(MessageKind::kCoherenceRequest, 64));
  f.set_backend(Backend::kSmartNic);
  EXPECT_TRUE(f.SmartNicOffloaded(MessageKind::kCoherenceRequest, 64));
  EXPECT_TRUE(f.SmartNicOffloaded(MessageKind::kCoherenceReply, 8192));
  EXPECT_TRUE(f.SmartNicOffloaded(MessageKind::kPushdownRequest, 256));
  EXPECT_FALSE(f.SmartNicOffloaded(MessageKind::kPushdownRequest, 257));
  EXPECT_FALSE(f.SmartNicOffloaded(MessageKind::kPageFaultRequest, 64));
}

TEST(FabricBackendTest, SmartNicCoherenceSkipsTheBusyController) {
  // Saturate the shard controller with pushdown traffic, then issue a
  // coherence round trip. The SmartNIC backend answers it NIC-side: it
  // neither waits for the controller nor pays the host handler.
  const auto p = TestParams();
  const auto coherence_rtt = [&](Backend b) {
    Fabric f(p);
    f.set_backend(b);
    f.SendToMemory(Link{}, 0, 200'000, MessageKind::kPushdownRequest);
    return f.RoundTripFromCompute(Link{}, 0, 64, 64, /*handler_ns=*/900,
                                  MessageKind::kCoherenceRequest,
                                  MessageKind::kCoherenceReply);
  };
  const Nanos host = coherence_rtt(Backend::kQueuedRdma);
  const Nanos nic = coherence_rtt(Backend::kSmartNic);
  EXPECT_LT(nic, host);

  Fabric f(p);
  f.set_backend(Backend::kSmartNic);
  f.RoundTripFromCompute(Link{}, 0, 64, 64, 900,
                         MessageKind::kCoherenceRequest,
                         MessageKind::kCoherenceReply);
  EXPECT_EQ(f.smartnic_offloads(), 2u);  // request and reply both on-NIC
}

TEST(FabricBackendTest, QueueBacklogDecaysWithVirtualTime) {
  Fabric f(TestParams());
  f.set_backend(Backend::kQueuedRdma);
  f.SendToMemory(Link{}, 0, 100'000);  // link busy until 100'250
  const Nanos at_zero = f.QueueBacklogNs(Link{}, 0);
  const Nanos later = f.QueueBacklogNs(Link{}, 50'000);
  EXPECT_GT(at_zero, 0);
  EXPECT_LT(later, at_zero);
  EXPECT_EQ(f.QueueBacklogNs(Link{}, 200'000), 0);
}

TEST(FabricBackendTest, ResetClearsQueueState) {
  Fabric f(TestParams());
  f.set_backend(Backend::kQueuedRdma);
  f.SendToMemory(Link{}, 0, 100'000);
  f.SendToMemory(Link{}, 0, 500);
  ASSERT_GT(f.doorbells() + f.coalesced_doorbells(), 0u);
  f.Reset();
  EXPECT_EQ(f.QueueBacklogNs(Link{}, 0), 0);
  EXPECT_EQ(f.doorbells(), 0u);
  EXPECT_EQ(f.coalesced_doorbells(), 0u);
  EXPECT_EQ(f.QueueBreakdownToString(), "fabricq{}");
  EXPECT_EQ(f.SendToMemory(0, 500), 1750);  // fresh-fabric number again
}

namespace {

/// Interleaver task driving one direction of a Fabric link at its own
/// virtual pace (the satellite-3 reproducer shape, lifted from the raw
/// Channel to the backend-dispatched fabric path).
class FabricSenderTask : public sim::Task {
 public:
  FabricSenderTask(Fabric* fabric, Link link, Nanos quantum, uint64_t bytes,
                   int sends, std::vector<Nanos>* deliveries)
      : fabric_(fabric),
        link_(link),
        quantum_(quantum),
        bytes_(bytes),
        sends_(sends),
        deliveries_(deliveries) {}

  Nanos clock() const override { return clock_.now(); }
  bool done() const override { return sends_ == 0; }
  void Step() override {
    clock_.Advance(quantum_);
    deliveries_->push_back(
        fabric_->SendToMemory(link_, clock_.now(), bytes_));
    --sends_;
  }

 private:
  Fabric* fabric_;
  Link link_;
  Nanos quantum_;
  uint64_t bytes_;
  int sends_;
  std::vector<Nanos>* deliveries_;
  sim::VirtualClock clock_;
};

std::vector<Nanos> RunInterleavedSends(Backend backend, uint64_t seed) {
  const auto p = TestParams();
  Fabric f(p);
  f.set_backend(backend);
  std::vector<Nanos> deliveries;
  FabricSenderTask big(&f, Link{}, /*quantum=*/50'000, /*bytes=*/100'000,
                       /*sends=*/20, &deliveries);
  FabricSenderTask small(&f, Link{}, /*quantum=*/7'000, /*bytes=*/500,
                         /*sends=*/20, &deliveries);
  sim::Interleaver il;
  il.Add(&big);
  il.Add(&small);
  sim::RandomSchedule schedule(seed);
  il.set_schedule(&schedule);
  il.Run();
  return deliveries;
}

}  // namespace

// Satellite-3 regression, parameterized over both contended backends: the
// queued model serializes a lagging send behind committed queue residency
// (start >= busy_until of every shared resource), so deliveries on one
// channel are monotone in host-call order with no idle-wire exemption —
// CommitAt is the final clamp for the SmartNIC-mixing edge.
TEST(FabricBackendTest, InterleavedLaggingSendsStayFifoUnderBothBackends) {
  for (const Backend backend : {Backend::kQueuedRdma, Backend::kSmartNic}) {
    for (uint64_t seed = 1; seed <= 10; ++seed) {
      const std::vector<Nanos> deliveries =
          RunInterleavedSends(backend, seed);
      ASSERT_EQ(deliveries.size(), 40u);
      for (size_t i = 1; i < deliveries.size(); ++i) {
        EXPECT_GE(deliveries[i], deliveries[i - 1])
            << BackendToString(backend) << " seed " << seed << " send " << i
            << " overtook a committed delivery";
      }
    }
  }
}

}  // namespace
}  // namespace teleport::net
