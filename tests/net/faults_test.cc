// FaultInjector unit tests plus the Fabric failure-window contract: the
// single-argument InjectFailureWindow form means "permanent" via the
// kNeverHeals sentinel, and a degenerate interval aborts instead of
// silently meaning forever.

#include <cstdint>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "net/fabric.h"
#include "net/faults.h"
#include "sim/cost_model.h"

namespace teleport::net {
namespace {

sim::CostParams Params() { return sim::CostParams::Default(); }

TEST(FailureWindowTest, SingleArgumentFormIsPermanent) {
  Fabric fabric(Params());
  fabric.InjectFailureWindow(5 * kMicrosecond);
  EXPECT_TRUE(fabric.ReachableAt(0));
  EXPECT_FALSE(fabric.ReachableAt(5 * kMicrosecond));
  EXPECT_FALSE(fabric.ReachableAt(1000 * kSecond));
  EXPECT_EQ(fabric.NextReachableAt(6 * kMicrosecond), Fabric::kNeverHeals);
}

TEST(FailureWindowTest, FiniteWindowHeals) {
  Fabric fabric(Params());
  fabric.InjectFailureWindow(10, 20);
  EXPECT_TRUE(fabric.ReachableAt(9));
  EXPECT_FALSE(fabric.ReachableAt(10));
  EXPECT_FALSE(fabric.ReachableAt(19));
  EXPECT_TRUE(fabric.ReachableAt(20));
  EXPECT_EQ(fabric.NextReachableAt(15), 20);
  EXPECT_EQ(fabric.NextReachableAt(25), 25);
}

TEST(FailureWindowDeathTest, EmptyWindowAborts) {
  Fabric fabric(Params());
  // `until == from` historically meant "forever" silently; it is now a
  // contract violation.
  EXPECT_DEATH(fabric.InjectFailureWindow(7, 7), "failure window");
  EXPECT_DEATH(fabric.InjectFailureWindow(7, 3), "failure window");
}

TEST(FailureWindowTest, HardDownIgnoresInjectorOutages) {
  Fabric fabric(Params());
  FaultInjector inj(/*seed=*/1);
  inj.AddOutage(100, 200);
  fabric.set_fault_injector(&inj);
  EXPECT_FALSE(fabric.ReachableAt(150));  // transient: link down
  EXPECT_FALSE(fabric.HardDownAt(150));   // ...but not panic-class
  fabric.InjectFailureWindow(300, 400);
  EXPECT_TRUE(fabric.HardDownAt(350));
}

TEST(FaultInjectorTest, SeedDeterminism) {
  FaultSpec spec;
  spec.drop_p = 0.3;
  spec.dup_p = 0.1;
  spec.delay_p = 0.2;
  spec.delay_ns = 500;
  FaultInjector a(/*seed=*/42), b(/*seed=*/42);
  a.SetSpecAll(spec);
  b.SetSpecAll(spec);
  for (int i = 0; i < 1000; ++i) {
    const FaultDecision da = a.OnSend(MessageKind::kPageFaultRequest, i);
    const FaultDecision db = b.OnSend(MessageKind::kPageFaultRequest, i);
    EXPECT_EQ(da.dropped, db.dropped);
    EXPECT_EQ(da.copies, db.copies);
    EXPECT_EQ(da.extra_delay_ns, db.extra_delay_ns);
  }
  EXPECT_EQ(a.drops(), b.drops());
  EXPECT_EQ(a.duplicates(), b.duplicates());
  EXPECT_EQ(a.delays(), b.delays());
}

TEST(FaultInjectorTest, PerKindSpecsAreIndependent) {
  FaultInjector inj(/*seed=*/7);
  FaultSpec drop_all;
  drop_all.drop_p = 1.0;
  inj.SetSpec(MessageKind::kHeartbeat, drop_all);
  for (int i = 0; i < 50; ++i) {
    EXPECT_TRUE(inj.OnSend(MessageKind::kHeartbeat, i).dropped);
    EXPECT_FALSE(inj.OnSend(MessageKind::kPageFaultRequest, i).dropped);
  }
  EXPECT_EQ(inj.drops_of(MessageKind::kHeartbeat), 50u);
  EXPECT_EQ(inj.drops_of(MessageKind::kPageFaultRequest), 0u);
}

TEST(FaultInjectorTest, LinkFlapsFollowTheSchedule) {
  FaultInjector inj(/*seed=*/1);
  // Three 10ns flaps starting at 100, one every 50ns.
  inj.AddLinkFlaps(/*start=*/100, /*duration=*/10, /*period=*/50,
                   /*count=*/3);
  EXPECT_TRUE(inj.LinkUpAt(99));
  EXPECT_FALSE(inj.LinkUpAt(100));
  EXPECT_FALSE(inj.LinkUpAt(109));
  EXPECT_TRUE(inj.LinkUpAt(110));
  EXPECT_FALSE(inj.LinkUpAt(155));
  EXPECT_FALSE(inj.LinkUpAt(205));
  EXPECT_TRUE(inj.LinkUpAt(260));
  EXPECT_EQ(inj.HealsAt(105), 110);
  EXPECT_EQ(inj.HealsAt(99), -1);  // link is up: nothing to heal
}

TEST(FaultInjectorDeathTest, OverlappingOutagesAbort) {
  FaultInjector inj(/*seed=*/1);
  inj.AddOutage(100, 200);
  // Partial overlap, containment, and identical windows are all rejected —
  // merging would have to pick one crash_restart flag silently.
  EXPECT_DEATH(inj.AddOutage(150, 250), "overlaps");
  EXPECT_DEATH(inj.AddOutage(120, 180), "overlaps");
  EXPECT_DEATH(inj.AddOutage(100, 200), "overlaps");
  EXPECT_DEATH(inj.AddOutage(50, 101, /*crash_restart=*/true), "overlaps");
  EXPECT_DEATH(inj.AddOutage(500, 400), "finite");
}

TEST(FaultInjectorTest, TouchingOutageWindowsAreAllowed) {
  FaultInjector inj(/*seed=*/1);
  inj.AddOutage(100, 200);
  inj.AddOutage(200, 300, /*crash_restart=*/true);  // until == next.from
  inj.AddOutage(50, 100);
  EXPECT_FALSE(inj.LinkUpAt(99));
  EXPECT_FALSE(inj.LinkUpAt(150));
  EXPECT_FALSE(inj.LinkUpAt(250));
  EXPECT_TRUE(inj.LinkUpAt(300));
  EXPECT_FALSE(inj.InCrashRestartAt(150));
  EXPECT_TRUE(inj.InCrashRestartAt(200));
  EXPECT_EQ(inj.HealsAt(120), 200);
  EXPECT_EQ(inj.CrashRestartsCompletedBy(299), 0);
  EXPECT_EQ(inj.CrashRestartsCompletedBy(300), 1);
}

// The binary-searched timeline must agree with a brute-force linear scan at
// every instant, for windows inserted in arbitrary order.
TEST(FaultInjectorTest, TimelineQueriesMatchLinearScan) {
  FaultInjector inj(/*seed=*/1);
  struct W {
    Nanos from, until;
    bool crash;
  };
  // Disjoint, deliberately inserted out of from-order, some touching.
  const std::vector<W> windows = {
      {700, 900, true},  {100, 150, false}, {150, 220, true},
      {400, 401, false}, {1000, 1300, true}, {2000, 2001, true},
  };
  for (const W& w : windows) inj.AddOutage(w.from, w.until, w.crash);
  for (Nanos t = 0; t <= 2100; ++t) {
    const W* covering = nullptr;
    int completed = 0;
    for (const W& w : windows) {
      if (t >= w.from && t < w.until) covering = &w;
      if (w.crash && w.until <= t) ++completed;
    }
    ASSERT_EQ(inj.LinkUpAt(t), covering == nullptr) << "t=" << t;
    ASSERT_EQ(inj.HealsAt(t), covering != nullptr ? covering->until : -1)
        << "t=" << t;
    ASSERT_EQ(inj.InCrashRestartAt(t), covering != nullptr && covering->crash)
        << "t=" << t;
    ASSERT_EQ(inj.CrashRestartsCompletedBy(t), completed) << "t=" << t;
  }
}

TEST(FaultInjectorTest, CrashRestartWindowsAreCounted) {
  FaultInjector inj(/*seed=*/1);
  inj.ScheduleCrashRestart(/*at=*/1000, /*down_for=*/500);
  inj.AddOutage(5000, 5100, /*crash_restart=*/false);
  EXPECT_TRUE(inj.InCrashRestartAt(1200));
  EXPECT_FALSE(inj.InCrashRestartAt(5050));  // plain outage, no data loss
  EXPECT_EQ(inj.CrashRestartsCompletedBy(1499), 0);
  EXPECT_EQ(inj.CrashRestartsCompletedBy(1500), 1);
  EXPECT_EQ(inj.CrashRestartsCompletedBy(6000), 1);
}

TEST(FabricFaultTest, ReliableSendIsDelayedNeverLost) {
  Fabric fabric(Params());
  FaultInjector inj(/*seed=*/3);
  FaultSpec spec;
  spec.drop_p = 0.5;
  inj.SetSpecAll(spec);
  fabric.set_fault_injector(&inj);
  Nanos t = 0;
  for (int i = 0; i < 200; ++i) {
    const Nanos d = fabric.SendToMemory(t, 64, MessageKind::kPageReturn);
    EXPECT_GT(d, t);  // always delivered, possibly after retransmits
    t = d;
  }
  EXPECT_GT(inj.drops(), 0u);
}

TEST(FabricFaultTest, TrySendSurfacesDropsAndOutages) {
  Fabric fabric(Params());
  FaultInjector inj(/*seed=*/3);
  FaultSpec drop_all;
  drop_all.drop_p = 1.0;
  inj.SetSpec(MessageKind::kPushdownRequest, drop_all);
  inj.AddOutage(1000, 2000);
  fabric.set_fault_injector(&inj);
  EXPECT_FALSE(
      fabric.TrySendToMemory(0, 64, MessageKind::kPushdownRequest).delivered);
  // Outage drops any kind, even with a zero drop probability.
  EXPECT_FALSE(
      fabric.TrySendToMemory(1500, 64, MessageKind::kHeartbeat).delivered);
  EXPECT_TRUE(
      fabric.TrySendToMemory(2500, 64, MessageKind::kHeartbeat).delivered);
  EXPECT_GT(inj.outage_drops(), 0u);
}

TEST(FabricFaultTest, PerKindAccountingSeparatesTraffic) {
  Fabric fabric(Params());
  fabric.SendToMemory(0, 100, MessageKind::kPushdownRequest);
  fabric.SendToCompute(10, 200, MessageKind::kPushdownResponse);
  fabric.SendToMemory(20, 64, MessageKind::kTryCancel);
  fabric.RoundTripFromCompute(30, 64, 64, 0, MessageKind::kHeartbeat,
                              MessageKind::kHeartbeat);
  EXPECT_EQ(fabric.messages_of(MessageKind::kPushdownRequest), 1u);
  EXPECT_EQ(fabric.bytes_of(MessageKind::kPushdownRequest), 100u);
  EXPECT_EQ(fabric.messages_of(MessageKind::kPushdownResponse), 1u);
  EXPECT_EQ(fabric.messages_of(MessageKind::kTryCancel), 1u);
  EXPECT_EQ(fabric.messages_of(MessageKind::kHeartbeat), 2u);
  EXPECT_EQ(fabric.messages_of(MessageKind::kCoherenceRequest), 0u);
  // Per-kind counts tie out against the channel totals.
  uint64_t sum = 0;
  for (int k = 0; k < kNumMessageKinds; ++k) {
    sum += fabric.messages_of(static_cast<MessageKind>(k));
  }
  EXPECT_EQ(sum, fabric.total_messages());
  EXPECT_NE(fabric.KindBreakdownToString().find("Heartbeat=2"),
            std::string::npos);
}

TEST(FabricFaultTest, ZeroProbabilityInjectorMatchesNoInjector) {
  Fabric plain(Params());
  Fabric injected(Params());
  FaultInjector inj(/*seed=*/9);  // all probabilities default to zero
  injected.set_fault_injector(&inj);
  Nanos tp = 0, ti = 0;
  for (int i = 0; i < 100; ++i) {
    tp = plain.SendToMemory(tp, 64 + i, MessageKind::kPageReturn);
    ti = injected.SendToMemory(ti, 64 + i, MessageKind::kPageReturn);
    EXPECT_EQ(tp, ti);
  }
  EXPECT_EQ(plain.total_messages(), injected.total_messages());
  EXPECT_EQ(plain.total_bytes(), injected.total_bytes());
}

// PR9 satellite regression: fault streams are per link per direction. The
// seed drew every link's faults from ONE global stream in send order, so
// adding traffic on link A reshuffled which sends on link B got faulted —
// a chaos scenario's fault pattern changed when an unrelated tenant's
// traffic moved. Now link B's fault sequence is a pure function of link B's
// own send sequence.
TEST(FaultInjectorTest, LinkFaultStreamsAreIsolated) {
  FaultSpec spec;
  spec.drop_p = 0.35;
  spec.dup_p = 0.15;
  spec.delay_p = 0.25;
  spec.delay_ns = 700;
  const Link kA{0, 0};
  const Link kB{1, 0};

  // Run 1: link B alone.
  FaultInjector solo(/*seed=*/77);
  solo.SetSpecAll(spec);
  std::vector<FaultDecision> b_solo;
  for (int i = 0; i < 300; ++i) {
    b_solo.push_back(
        solo.OnSend(MessageKind::kPageReturn, i, kB, /*to_memory=*/true));
  }

  // Run 2: link B's sends interleaved with heavy unrelated traffic on link
  // A (both directions) and on B's own reverse direction.
  FaultInjector busy(/*seed=*/77);
  busy.SetSpecAll(spec);
  for (int i = 0; i < 300; ++i) {
    busy.OnSend(MessageKind::kPageFaultRequest, i, kA, true);
    const FaultDecision d =
        busy.OnSend(MessageKind::kPageReturn, i, kB, /*to_memory=*/true);
    busy.OnSend(MessageKind::kPageFaultReply, i, kA, false);
    busy.OnSend(MessageKind::kCoherenceReply, i, kB, /*to_memory=*/false);
    const FaultDecision& want = b_solo[static_cast<size_t>(i)];
    ASSERT_EQ(d.dropped, want.dropped) << "send " << i;
    ASSERT_EQ(d.copies, want.copies) << "send " << i;
    ASSERT_EQ(d.extra_delay_ns, want.extra_delay_ns) << "send " << i;
  }
}

TEST(FaultInjectorTest, LegacyOverloadIsTheDefaultLinkStream) {
  // Pre-rack call sites (and older tests) use the 2-arg OnSend; it must be
  // exactly the {0, 0} compute->memory stream so 1x1 runs have one
  // well-defined fault timeline.
  FaultSpec spec;
  spec.drop_p = 0.5;
  FaultInjector a(/*seed=*/11), b(/*seed=*/11);
  a.SetSpecAll(spec);
  b.SetSpecAll(spec);
  for (int i = 0; i < 200; ++i) {
    EXPECT_EQ(a.OnSend(MessageKind::kSyncmem, i).dropped,
              b.OnSend(MessageKind::kSyncmem, i, Link{0, 0}, true).dropped);
  }
}

TEST(FaultInjectorTest, ResetReplaysEveryLinkStream) {
  FaultSpec spec;
  spec.drop_p = 0.4;
  spec.dup_p = 0.2;
  FaultInjector inj(/*seed=*/13);
  inj.SetSpecAll(spec);
  const auto run = [&] {
    std::vector<int> pattern;
    for (int i = 0; i < 100; ++i) {
      for (const Link link : {Link{0, 0}, Link{1, 1}, Link{2, 0}}) {
        const FaultDecision d =
            inj.OnSend(MessageKind::kPageReturn, i, link, true);
        pattern.push_back(d.dropped ? -1 : d.copies);
      }
    }
    return pattern;
  };
  const std::vector<int> first = run();
  inj.Reset();
  EXPECT_EQ(run(), first);
}

TEST(FabricFaultTest, ResetClearsKindAccountingAndReseedsInjector) {
  Fabric fabric(Params());
  FaultInjector inj(/*seed=*/5);
  FaultSpec spec;
  spec.drop_p = 0.4;
  inj.SetSpecAll(spec);
  fabric.set_fault_injector(&inj);
  Nanos t = 0;
  std::vector<Nanos> first;
  for (int i = 0; i < 50; ++i) {
    t = fabric.SendToMemory(t, 64, MessageKind::kPageReturn);
    first.push_back(t);
  }
  fabric.Reset();
  EXPECT_EQ(fabric.messages_of(MessageKind::kPageReturn), 0u);
  EXPECT_EQ(inj.drops(), 0u);
  t = 0;
  for (int i = 0; i < 50; ++i) {
    t = fabric.SendToMemory(t, 64, MessageKind::kPageReturn);
    EXPECT_EQ(t, first[static_cast<size_t>(i)]);  // same seed, same run
  }
}

}  // namespace
}  // namespace teleport::net
