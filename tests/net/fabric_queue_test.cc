// PR9 satellite: property tests of the contended fabric's queueing model.
// Four contracts, each checked over randomized send sequences:
//
//  1. Work conservation — a backlogged queue never idles: back-to-back
//     sends complete in exactly sum-of-service time.
//  2. Per-flow FIFO — deliveries on one (link, direction) are monotone in
//     host-call order under any schedule.
//  3. Capacity — no resource ever serves bytes faster than its bandwidth:
//     consecutive service completions are spaced by at least the later
//     message's serialization time.
//  4. Determinism — replaying the identical RandomSchedule evolves the
//     queues bit-identically, at two fleet scales.

#include "net/fabric.h"

#include <algorithm>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "sim/clock.h"
#include "sim/interleaver.h"

namespace teleport::net {
namespace {

sim::CostParams TestParams() {
  sim::CostParams p;
  p.net_latency_ns = 1000;
  p.net_bytes_per_ns = 1.0;
  return p;
}

TEST(FabricQueueProperty, BackloggedQueueIsWorkConserving) {
  // 16 sends all submitted at t=0: the first pays the verb overhead (250),
  // the rest coalesce onto its doorbell; the link (the slowest resource at
  // 1 B/ns) then serves them back to back with zero idle time, so the last
  // delivery is exactly 250 + sum(bytes) + latency.
  Fabric f(TestParams());
  f.set_backend(Backend::kQueuedRdma);
  Nanos last = 0;
  uint64_t total = 0;
  for (int i = 0; i < 16; ++i) {
    const uint64_t bytes = 1000 + static_cast<uint64_t>(i) * 10;
    total += bytes;
    last = f.SendToMemory(Link{}, 0, bytes);
  }
  EXPECT_EQ(last, 250 + static_cast<Nanos>(total) + 1000);
  EXPECT_EQ(f.doorbells(), 1u);
  EXPECT_EQ(f.coalesced_doorbells(), 15u);
}

TEST(FabricQueueProperty, PerFlowFifoUnderRandomizedArrivals) {
  for (const Backend backend : {Backend::kQueuedRdma, Backend::kSmartNic}) {
    Rng rng(99);
    Fabric f(TestParams(), /*compute_nodes=*/2, /*memory_nodes=*/2);
    f.set_backend(backend);
    std::vector<std::vector<Nanos>> per_link(4);
    Nanos now = 0;
    for (int i = 0; i < 400; ++i) {
      now += static_cast<Nanos>(rng.Uniform(700));
      const Link link{static_cast<int>(rng.Uniform(2)),
                      static_cast<int>(rng.Uniform(2))};
      const uint64_t bytes = 64 + rng.Uniform(20'000);
      per_link[static_cast<size_t>(link.src * 2 + link.dst)].push_back(
          f.SendToMemory(link, now, bytes));
    }
    for (const std::vector<Nanos>& deliveries : per_link) {
      for (size_t i = 1; i < deliveries.size(); ++i) {
        EXPECT_GE(deliveries[i], deliveries[i - 1])
            << BackendToString(backend);
      }
    }
  }
}

TEST(FabricQueueProperty, LinkNeverServesAboveCapacity) {
  // delivery - latency is the message's link-service completion. Service of
  // message i cannot finish sooner than its own serialization time after
  // service of i-1 finished — i.e. the wire moved at most bytes_per_ns.
  // (Truncation in SerializationNs gives at most 1 ns slack per message.)
  const auto p = TestParams();
  Rng rng(7);
  Fabric f(p);
  f.set_backend(Backend::kQueuedRdma);
  Nanos now = 0;
  Nanos prev_completion = -1;
  for (int i = 0; i < 500; ++i) {
    now += static_cast<Nanos>(rng.Uniform(300));
    const uint64_t bytes = 64 + rng.Uniform(5'000);
    const Nanos completion =
        f.SendToMemory(Link{}, now, bytes) - p.net_latency_ns;
    if (prev_completion >= 0) {
      const Nanos min_ser = static_cast<Nanos>(
          static_cast<double>(bytes) / p.net_bytes_per_ns);
      EXPECT_GE(completion, prev_completion + min_ser - 1) << "send " << i;
    }
    prev_completion = completion;
  }
}

namespace {

/// Interleaver task sending on its own link at its own virtual pace.
class QueueSenderTask : public sim::Task {
 public:
  QueueSenderTask(Fabric* fabric, Link link, Nanos quantum, uint64_t bytes,
                  int sends, std::vector<Nanos>* log)
      : fabric_(fabric),
        link_(link),
        quantum_(quantum),
        bytes_(bytes),
        sends_(sends),
        log_(log) {}

  Nanos clock() const override { return clock_.now(); }
  bool done() const override { return sends_ == 0; }
  void Step() override {
    clock_.Advance(quantum_);
    log_->push_back(fabric_->SendToMemory(link_, clock_.now(), bytes_));
    --sends_;
  }

 private:
  Fabric* fabric_;
  Link link_;
  Nanos quantum_;
  uint64_t bytes_;
  int sends_;
  std::vector<Nanos>* log_;
  sim::VirtualClock clock_;
};

/// Runs `tasks` interleaved senders (task t on link {t % nodes, 0}) under
/// RandomSchedule(seed) and returns every delivery in commit order plus the
/// fabric's queue breakdown — the full observable queue evolution.
std::pair<std::vector<Nanos>, std::string> RunFleet(int tasks, int sends,
                                                    uint64_t seed) {
  const auto p = TestParams();
  const int nodes = std::max(2, tasks / 2);
  Fabric f(p, nodes, /*memory_nodes=*/1);
  f.set_backend(Backend::kQueuedRdma);
  std::vector<Nanos> log;
  std::vector<QueueSenderTask> fleet;
  fleet.reserve(static_cast<size_t>(tasks));
  for (int t = 0; t < tasks; ++t) {
    fleet.emplace_back(&f, Link{t % nodes, 0},
                       /*quantum=*/3'000 + 1'000 * t,
                       /*bytes=*/500 + 400 * static_cast<uint64_t>(t), sends,
                       &log);
  }
  sim::Interleaver il;
  for (QueueSenderTask& task : fleet) il.Add(&task);
  sim::RandomSchedule schedule(seed);
  il.set_schedule(&schedule);
  il.Run();
  return {std::move(log), f.QueueBreakdownToString()};
}

}  // namespace

TEST(FabricQueueProperty, ReplayIsBitIdenticalAtTwoScales) {
  // Queue state is a pure function of the send sequence, so the same
  // schedule seed must reproduce every delivery time AND every queue
  // counter — at a small scale and at a 4x larger fleet sharing one shard
  // controller.
  for (const auto& [tasks, sends] : {std::pair{2, 20}, std::pair{8, 10}}) {
    for (uint64_t seed = 1; seed <= 5; ++seed) {
      const auto first = RunFleet(tasks, sends, seed);
      const auto replay = RunFleet(tasks, sends, seed);
      EXPECT_EQ(first.first, replay.first)
          << tasks << " tasks, seed " << seed;
      EXPECT_EQ(first.second, replay.second)
          << tasks << " tasks, seed " << seed;
      EXPECT_EQ(first.first.size(),
                static_cast<size_t>(tasks) * static_cast<size_t>(sends));
    }
  }
  // Different schedules genuinely differ (the replay check is not vacuous).
  EXPECT_NE(RunFleet(8, 10, 1).first, RunFleet(8, 10, 4).first);
}

}  // namespace
}  // namespace teleport::net
