// PR7 rack-scale regressions for the net layer.
//
// Satellite 1: the reliable-FIFO clamp of net::Channel is a property of ONE
// (src, dst) link's committed-transfer timeline. The single-pool code kept
// one global timeline, so a large transfer to one memory node head-of-line
// blocked an independent send to another node — the per-link tests here
// fail against that behavior.
//
// Satellite 2: net::FaultInjector outage/crash windows are keyed by memory
// node: windows on different nodes are independent timelines (may overlap
// freely), windows on one node stay pairwise disjoint (overlap aborts), and
// every binary-searched timeline query agrees with a brute-force linear
// scan over the same multi-node schedule.

#include <algorithm>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "net/fabric.h"
#include "net/faults.h"

namespace teleport::net {
namespace {

sim::CostParams TestParams() {
  sim::CostParams p;
  p.net_latency_ns = 1000;
  p.net_bytes_per_ns = 1.0;  // 1 byte/ns for easy arithmetic
  return p;
}

TEST(RackFabricTest, IndependentLinksDoNotHeadOfLineBlock) {
  Fabric fabric(TestParams(), /*compute_nodes=*/1, /*memory_nodes=*/2);
  // A large committed transfer to shard 0...
  const Nanos big = fabric.SendToMemory(Link{0, 0}, 0, 1'000'000,
                                        MessageKind::kPageReturn);
  // ...must not delay a small send to shard 1 issued just after: the two
  // links have separate committed-transfer timelines.
  const Nanos small = fabric.SendToMemory(Link{0, 1}, 10, 8,
                                          MessageKind::kPageReturn);
  EXPECT_LT(small, big)
      << "a transfer to shard 1 was clamped behind shard 0's timeline";
  // The same-link clamp is intact: FIFO per link.
  const Nanos big0 = fabric.SendToMemory(Link{0, 0}, big + 1, 1'000'000,
                                         MessageKind::kPageReturn);
  const Nanos after0 = fabric.SendToMemory(Link{0, 0}, big + 20, 8,
                                           MessageKind::kPageReturn);
  EXPECT_GE(after0, big0);
}

TEST(RackFabricTest, PerComputeNodeLinksAreIndependentToo) {
  Fabric fabric(TestParams(), /*compute_nodes=*/2, /*memory_nodes=*/1);
  const Nanos big = fabric.SendToMemory(Link{0, 0}, 0, 1'000'000,
                                        MessageKind::kPageReturn);
  const Nanos small = fabric.SendToMemory(Link{1, 0}, 10, 8,
                                          MessageKind::kPageReturn);
  EXPECT_LT(small, big);
}

TEST(RackFabricTest, LegacyCallsRouteOverLinkZero) {
  // The no-link overloads are exactly Link{0, 0}: one fabric, two handles.
  Fabric a(TestParams(), 2, 2);
  Fabric b(TestParams(), 2, 2);
  const Nanos via_legacy = a.SendToMemory(0, 4096, MessageKind::kPageReturn);
  const Nanos via_link =
      b.SendToMemory(Link{0, 0}, 0, 4096, MessageKind::kPageReturn);
  EXPECT_EQ(via_legacy, via_link);
}

TEST(RackFabricTest, PerNodeReachabilityIsIndependent) {
  Fabric fabric(TestParams(), 1, 2);
  fabric.set_node_reachable(0, false);
  EXPECT_FALSE(fabric.ReachableAt(0, 0));
  EXPECT_TRUE(fabric.ReachableAt(0, 1));
  fabric.set_node_reachable(0, true);
  fabric.InjectFailureWindowOn(1, 100, 200);
  EXPECT_TRUE(fabric.ReachableAt(150, 0));
  EXPECT_FALSE(fabric.ReachableAt(150, 1));
  EXPECT_EQ(fabric.NextReachableAt(150, 1), 200);
  EXPECT_EQ(fabric.NextReachableAt(150, 0), 150);
}

TEST(RackFaultsTest, WindowsOnDifferentNodesMayOverlap) {
  FaultInjector inj(/*seed=*/1);
  inj.AddOutage(100, 300, /*crash_restart=*/false, /*node=*/0);
  inj.AddOutage(150, 250, /*crash_restart=*/true, /*node=*/1);  // overlaps 0
  EXPECT_FALSE(inj.LinkUpAt(200, 0));
  EXPECT_FALSE(inj.LinkUpAt(200, 1));
  EXPECT_TRUE(inj.LinkUpAt(120, 1));
  EXPECT_EQ(inj.HealsAt(200, 0), 300);
  EXPECT_EQ(inj.HealsAt(200, 1), 250);
  EXPECT_TRUE(inj.InCrashRestartAt(200, 1));
  EXPECT_FALSE(inj.InCrashRestartAt(200, 0));
  EXPECT_EQ(inj.CrashRestartsCompletedBy(260, 1), 1);
  EXPECT_EQ(inj.CrashRestartsCompletedBy(260, 0), 0);
  EXPECT_EQ(inj.total_windows(), 2u);
}

TEST(RackFaultsTest, SameNodeOverlapStillAborts) {
  FaultInjector inj(/*seed=*/1);
  inj.AddOutage(100, 200, false, /*node=*/3);
  EXPECT_DEATH(inj.AddOutage(150, 250, false, /*node=*/3), "overlaps");
  // Touching windows are fine, and other nodes are unaffected.
  inj.AddOutage(200, 220, false, /*node=*/3);
  inj.AddOutage(150, 250, false, /*node=*/4);
}

TEST(RackFaultsTest, BinarySearchedTimelineMatchesLinearScan) {
  // A dense multi-node schedule inserted in shuffled order; every query the
  // injector answers by binary search is cross-checked against a linear
  // scan of the node's sorted window list.
  constexpr int kNodes = 4;
  FaultInjector inj(/*seed=*/9);
  Rng rng(0xfab5);
  struct Win {
    Nanos from, until;
    bool crash;
    int node;
  };
  std::vector<Win> wins;
  for (int node = 0; node < kNodes; ++node) {
    Nanos t = 50 + static_cast<Nanos>(rng.Uniform(100));
    for (int i = 0; i < 40; ++i) {
      const Nanos from = t;
      const Nanos until = from + 10 + static_cast<Nanos>(rng.Uniform(90));
      wins.push_back(Win{from, until, rng.Bernoulli(0.4), node});
      t = until + static_cast<Nanos>(rng.Uniform(120));
    }
  }
  // Shuffle insertion order deterministically.
  for (size_t i = wins.size(); i > 1; --i) {
    std::swap(wins[i - 1], wins[rng.Uniform(i)]);
  }
  for (const Win& w : wins) inj.AddOutage(w.from, w.until, w.crash, w.node);
  EXPECT_EQ(inj.total_windows(), wins.size());

  for (int node = 0; node < kNodes; ++node) {
    const std::vector<OutageWindow>& sched = inj.outages(node);
    ASSERT_EQ(sched.size(), 40u);
    // Sorted and disjoint.
    for (size_t i = 1; i < sched.size(); ++i) {
      EXPECT_LE(sched[i - 1].until, sched[i].from);
    }
    for (Nanos t = 0; t < 6000; t += 7) {
      bool up = true;
      Nanos heals = -1;
      bool crash_now = false;
      int completed = 0;
      for (const OutageWindow& w : sched) {
        if (w.from <= t && t < w.until) {
          up = false;
          heals = w.until;
          crash_now = w.crash_restart;
        }
        if (w.crash_restart && w.until <= t) ++completed;
      }
      EXPECT_EQ(inj.LinkUpAt(t, node), up) << "t=" << t << " node=" << node;
      EXPECT_EQ(inj.HealsAt(t, node), heals) << "t=" << t << " node=" << node;
      EXPECT_EQ(inj.InCrashRestartAt(t, node), crash_now)
          << "t=" << t << " node=" << node;
      EXPECT_EQ(inj.CrashRestartsCompletedBy(t, node), completed)
          << "t=" << t << " node=" << node;
    }
    // A node with no schedule is always up.
    EXPECT_TRUE(inj.LinkUpAt(1000, kNodes + 1));
    EXPECT_EQ(inj.HealsAt(1000, kNodes + 1), -1);
  }
}

}  // namespace
}  // namespace teleport::net
