// PR7 tentpole regressions: the rack-scale open-loop traffic generator and
// the degenerate-rack identity.
//
// The 1x1 rack IS the pre-PR7 single-pool system: a default-constructed
// config and an explicit {compute_nodes=1, memory_shards=1} config must
// produce bit-identical traffic answers (checksum, virtual makespan, every
// merged metric). Multi-node runs must bind tenants to their compute nodes,
// spread slices across shards, stay fair under an even workload, and pass
// the full coherence/recovery model checker.

#include <gtest/gtest.h>

#include "ddc/memory_system.h"
#include "rack/traffic.h"
#include "teleport/model_checker.h"
#include "teleport/pushdown.h"

namespace teleport::rack {
namespace {

constexpr uint64_t kPage = 4096;

ddc::DdcConfig RackConfig(int compute_nodes, int memory_shards) {
  ddc::DdcConfig cfg;
  cfg.platform = ddc::Platform::kBaseDdc;
  cfg.compute_cache_bytes = 16 * kPage;
  cfg.memory_pool_bytes = 1024 * kPage;
  cfg.compute_nodes = compute_nodes;
  cfg.memory_shards = memory_shards;
  return cfg;
}

TrafficConfig SmallTraffic(uint64_t seed) {
  TrafficConfig cfg;
  cfg.tenants = 3;
  cfg.sessions = 60;
  cfg.ops_per_session = 64;
  cfg.slice_pages = 32;
  cfg.seed = seed;
  return cfg;
}

struct Rack {
  ddc::MemorySystem ms;
  tp::PushdownRuntime runtime;

  Rack(const ddc::DdcConfig& cfg, uint64_t space_bytes = 4 << 20)
      : ms(cfg, sim::CostParams::Default(), space_bytes), runtime(&ms) {}
};

/// Field-wise equality of two merged metric views via the X-macro, so a new
/// counter can never silently escape the identity lock.
void ExpectMetricsEqual(const sim::Metrics& a, const sim::Metrics& b) {
#define TELEPORT_RACK_TEST_EQ(field, group, label) \
  EXPECT_EQ(a.field, b.field) << #field;
  TELEPORT_SIM_METRICS_FIELDS(TELEPORT_RACK_TEST_EQ)
#undef TELEPORT_RACK_TEST_EQ
}

// The degenerate-rack identity: a config that never mentions the rack and
// an explicit 1x1 rack run the same traffic to the same bits.
TEST(RackDegenerateTest, DefaultConfigIsTheOneByOneRack) {
  ddc::DdcConfig implicit;
  implicit.platform = ddc::Platform::kBaseDdc;
  implicit.compute_cache_bytes = 16 * kPage;
  implicit.memory_pool_bytes = 1024 * kPage;
  Rack a(implicit);
  Rack b(RackConfig(1, 1));

  const TrafficConfig cfg = SmallTraffic(/*seed=*/42);
  const TrafficResult ra = RunOpenLoop(a.ms, a.runtime, cfg);
  const TrafficResult rb = RunOpenLoop(b.ms, b.runtime, cfg);
  EXPECT_EQ(ra.checksum, rb.checksum);
  EXPECT_EQ(ra.makespan_ns, rb.makespan_ns);
  EXPECT_EQ(ra.completed, rb.completed);
  EXPECT_EQ(ra.failed, rb.failed);
  EXPECT_EQ(ra.deferred, rb.deferred);
  ExpectMetricsEqual(ra.scopes.MergedMetrics(), rb.scopes.MergedMetrics());
}

TEST(RackTrafficTest, SameSeedReproducesBitIdentically) {
  const TrafficConfig cfg = SmallTraffic(/*seed=*/7);
  Rack a(RackConfig(2, 2));
  Rack b(RackConfig(2, 2));
  const TrafficResult ra = RunOpenLoop(a.ms, a.runtime, cfg);
  const TrafficResult rb = RunOpenLoop(b.ms, b.runtime, cfg);
  EXPECT_EQ(ra.checksum, rb.checksum);
  EXPECT_EQ(ra.makespan_ns, rb.makespan_ns);
  EXPECT_EQ(ra.completed, static_cast<uint64_t>(cfg.sessions));
  EXPECT_EQ(ra.failed, 0u);

  // A different seed drives different kernels: the answer moves.
  Rack c(RackConfig(2, 2));
  TrafficConfig other = cfg;
  other.seed = 8;
  EXPECT_NE(RunOpenLoop(c.ms, c.runtime, other).checksum, ra.checksum);
}

// Admission control shifts virtual start times, never answers: the
// commutative checksum is schedule-independent by construction.
TEST(RackTrafficTest, AdmissionControlDefersWithoutChangingAnswers) {
  TrafficConfig open = SmallTraffic(/*seed=*/3);
  open.sessions = 90;
  open.mean_interarrival_ns = 2 * kMicrosecond;  // dense enough to queue
  TrafficConfig limited = open;
  limited.max_concurrent = 2;

  Rack a(RackConfig(2, 2));
  Rack b(RackConfig(2, 2));
  const TrafficResult ra = RunOpenLoop(a.ms, a.runtime, open);
  const TrafficResult rb = RunOpenLoop(b.ms, b.runtime, limited);
  EXPECT_EQ(ra.deferred, 0u);
  EXPECT_GT(rb.deferred, 0u) << "the admission knob never engaged";
  EXPECT_EQ(ra.checksum, rb.checksum);
  EXPECT_EQ(ra.completed, rb.completed);
  EXPECT_GE(rb.makespan_ns, ra.makespan_ns);
}

// Tenants bind to their compute node and their slices spread over both
// shards; an even workload scores perfect fairness on completions.
TEST(RackTrafficTest, TenantsSpreadAcrossNodesAndShards) {
  // 2 MiB of address space over 2 shards = 256 pages/shard; four 128-page
  // slices fill it exactly, two per shard.
  Rack rack(RackConfig(2, 2), /*space_bytes=*/2 << 20);
  TrafficConfig cfg;
  cfg.tenants = 4;
  cfg.sessions = 120;
  cfg.ops_per_session = 64;
  cfg.slice_pages = 128;
  cfg.seed = 11;
  const TrafficResult r = RunOpenLoop(rack.ms, rack.runtime, cfg);
  EXPECT_EQ(r.failed, 0u);
  EXPECT_EQ(r.completed, 120u);

  // Both compute nodes served sessions (tenant t runs on node t % 2).
  EXPECT_GT(rack.ms.cache_pages_used_on(0), 0u);
  EXPECT_GT(rack.ms.cache_pages_used_on(1), 0u);
  EXPECT_EQ(rack.ms.cache_pages_used(),
            rack.ms.cache_pages_used_on(0) + rack.ms.cache_pages_used_on(1));
  // Both shards hold resident pages.
  EXPECT_GT(rack.ms.memory_pool_pages_used_on(0), 0u);
  EXPECT_GT(rack.ms.memory_pool_pages_used_on(1), 0u);

  // 120 sessions over 4 tenants round-robin: exactly 30 each.
  for (int t = 0; t < 4; ++t) EXPECT_EQ(r.scopes.completed(t), 30u);
  EXPECT_DOUBLE_EQ(r.completion_fairness, 1.0);
  EXPECT_GT(r.remote_bytes_fairness, 0.0);
  EXPECT_LE(r.remote_bytes_fairness, 1.0);
}

// The full coherence/recovery model checker stays silent on a healthy 2x2
// rack under mixed db/graph/mr traffic.
TEST(RackTrafficTest, TwoByTwoRackPassesTheModelChecker) {
  Rack rack(RackConfig(2, 2), /*space_bytes=*/2 << 20);
  tp::ModelChecker checker(&rack.ms, tp::ModelChecker::OnViolation::kRecord);
  TrafficConfig cfg = SmallTraffic(/*seed=*/5);
  cfg.tenants = 4;
  cfg.sessions = 80;
  const TrafficResult r = RunOpenLoop(rack.ms, rack.runtime, cfg);
  EXPECT_EQ(r.failed, 0u);
  EXPECT_EQ(checker.Finish(), 0u);
}

}  // namespace
}  // namespace teleport::rack
