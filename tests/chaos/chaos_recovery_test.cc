// Chaos recovery (PR6): with TELEPORT_JOURNAL on, a pool crash-restart is
// survivable — the redo journal replays every acknowledged pool write, the
// pool epoch fences stale pushdown admissions, and idempotency tokens make
// duplicated pushdown deliveries exactly-once. Each planted protocol
// mutation (kSkipJournalReplay, kSkipFencing, kReplayDuplicate) must be
// caught by the model checker's recovery invariant (#6).

#include <cstdint>
#include <cstdlib>

#include <gtest/gtest.h>

#include "ddc/memory_system.h"
#include "net/faults.h"
#include "teleport/model_checker.h"
#include "teleport/pushdown.h"

namespace teleport {
namespace {

constexpr uint64_t kPage = 4096;

ddc::DdcConfig Config() {
  ddc::DdcConfig cfg;
  cfg.platform = ddc::Platform::kBaseDdc;
  cfg.compute_cache_bytes = 16 * kPage;
  cfg.memory_pool_bytes = 1024 * kPage;
  return cfg;
}

class ChaosRecoveryTest : public ::testing::Test {
 protected:
  ChaosRecoveryTest()
      : ms_(Config(), sim::CostParams::Default(), 32 << 20), runtime_(&ms_) {
    data_ = ms_.space().Alloc(64 * kPage, "d");
    ms_.SeedData();
    ms_.set_journal_enabled(true);
    ms_.fabric().set_fault_injector(&inj_);
  }

  /// Dirties 64 pages through the 16-page cache; the forced writebacks are
  /// acknowledged pool writes, each covered by a redo record.
  void DirtyPages(ddc::ExecutionContext& ctx) {
    for (uint64_t p = 0; p < 64; ++p) {
      ctx.Store<int64_t>(data_ + p * kPage, static_cast<int64_t>(p) + 1);
    }
  }

  Status Touch(ddc::ExecutionContext& caller) {
    return runtime_.Call(caller, [&](ddc::ExecutionContext& mc) {
      (void)mc.Load<int64_t>(data_);
      return Status::OK();
    });
  }

  ddc::MemorySystem ms_;
  tp::PushdownRuntime runtime_;
  net::FaultInjector inj_{/*seed=*/7};
  ddc::VAddr data_ = 0;
};

// The tentpole promise: every acknowledged pool write survives the crash.
// Records stay live across replay, so a back-to-back second crash recovers
// the same pages again.
TEST_F(ChaosRecoveryTest, JournalReplayRecoversAcknowledgedWrites) {
  tp::ModelChecker checker(&ms_, tp::ModelChecker::OnViolation::kRecord);
  auto ctx = ms_.CreateContext(ddc::Pool::kCompute);
  DirtyPages(*ctx);
  ASSERT_GT(ctx->metrics().dirty_writebacks, 0u);
  const uint64_t live = ms_.journal().live_records();
  ASSERT_GT(live, 0u);

  inj_.ScheduleCrashRestart(ctx->now() + 1 * kMillisecond,
                            /*down_for=*/500 * kMicrosecond);
  ctx->AdvanceTime(10 * kMillisecond);
  const ddc::MemorySystem::RestartOutcome out =
      ms_.ApplyPoolRestartsAt(*ctx, ctx->now());
  EXPECT_EQ(out.lost, 0u);
  EXPECT_EQ(out.recovered, live);
  EXPECT_EQ(out.recovery_ns, ms_.journal().ReplayCost(live));
  EXPECT_EQ(ms_.pool_epoch(), 2u);
  EXPECT_EQ(ms_.lost_pool_writes(), 0u);
  EXPECT_EQ(ms_.recovered_pool_writes(), live);
  EXPECT_EQ(ctx->metrics().recovered_pool_writes, live);
  EXPECT_EQ(ctx->metrics().lost_pool_writes, 0u);
  // Replay re-materialized exactly the journaled pages into pool DRAM.
  EXPECT_EQ(ms_.memory_pool_pages_used(), live);
  // Records stay live: the recovered copies are still ahead of storage.
  EXPECT_EQ(ms_.journal().live_records(), live);

  // A second crash-restart recovers the same set again.
  inj_.ScheduleCrashRestart(ctx->now() + 1 * kMillisecond,
                            /*down_for=*/500 * kMicrosecond);
  ctx->AdvanceTime(10 * kMillisecond);
  const ddc::MemorySystem::RestartOutcome again =
      ms_.ApplyPoolRestartsAt(*ctx, ctx->now());
  EXPECT_EQ(again.lost, 0u);
  EXPECT_EQ(again.recovered, live);
  EXPECT_EQ(ms_.pool_epoch(), 3u);

  // The data is intact after both recoveries.
  for (uint64_t p = 0; p < 64; ++p) {
    EXPECT_EQ(ctx->Load<int64_t>(data_ + p * kPage),
              static_cast<int64_t>(p) + 1);
  }
  EXPECT_EQ(checker.Finish(), 0u);
}

// Writes the journal never acknowledged — out-of-session direct pool
// stores — are genuinely unrecoverable: the loss is counted once and the
// next pushdown surfaces it as Unavailable; after that the system moves on.
TEST_F(ChaosRecoveryTest, UnjournaledDirectPoolWritesAreReportedLost) {
  auto mem = ms_.CreateContext(ddc::Pool::kMemory);
  mem->Store<int64_t>(data_, 42);  // direct pool write, no session
  EXPECT_EQ(ms_.journal().live_records(), 0u);

  auto caller = ms_.CreateContext(ddc::Pool::kCompute);
  inj_.ScheduleCrashRestart(caller->now() + 1 * kMillisecond,
                            /*down_for=*/500 * kMicrosecond);
  caller->AdvanceTime(10 * kMillisecond);

  const Status st = Touch(*caller);
  EXPECT_FALSE(st.ok());
  EXPECT_TRUE(st.IsUnavailable()) << st;
  EXPECT_NE(st.message().find("unrecoverable"), std::string::npos) << st;
  EXPECT_GT(ms_.lost_pool_writes(), 0u);

  // The loss was reported exactly once; the next call proceeds normally.
  const Status st2 = Touch(*caller);
  EXPECT_TRUE(st2.ok()) << st2;
  EXPECT_FALSE(runtime_.panicked());
}

// A crash-restart window that completes between call admission and the
// pool-side queue point makes the lease epoch stale: the pool fences the
// RPC, and the runtime re-admits under the fresh epoch and succeeds.
TEST_F(ChaosRecoveryTest, StaleEpochIsFencedThenReadmitted) {
  tp::ModelChecker checker(&ms_, tp::ModelChecker::OnViolation::kRecord);
  auto caller = ms_.CreateContext(ddc::Pool::kCompute);
  // The window opens just after admission and closes long before the
  // request reaches the pool (the one-way trip is microseconds).
  inj_.ScheduleCrashRestart(caller->now() + 100, /*down_for=*/200);

  const Status st = Touch(*caller);
  EXPECT_TRUE(st.ok()) << st;
  EXPECT_EQ(runtime_.fenced_rpcs(), 1u);
  EXPECT_EQ(caller->metrics().fenced_rpcs, 1u);
  EXPECT_EQ(ms_.pool_epoch(), 2u);
  // Fencing time lands in the breakdown, which still sums exactly.
  EXPECT_EQ(runtime_.last_breakdown().Total(), caller->now());
  EXPECT_GT(runtime_.last_breakdown().retry_ns, 0);
  EXPECT_EQ(checker.Finish(), 0u);
}

// Duplicated request deliveries present the same idempotency token; the
// pool executes the first and absorbs the rest.
TEST_F(ChaosRecoveryTest, DuplicateDeliveriesAreAbsorbedExactlyOnce) {
  net::FaultSpec dup;
  dup.dup_p = 1.0;  // every pushdown request arrives twice
  inj_.SetSpec(net::MessageKind::kPushdownRequest, dup);

  tp::ModelChecker checker(&ms_, tp::ModelChecker::OnViolation::kRecord);
  auto caller = ms_.CreateContext(ddc::Pool::kCompute);
  const Status st = Touch(*caller);
  EXPECT_TRUE(st.ok()) << st;
  EXPECT_GT(caller->metrics().dedup_hits, 0u);
  EXPECT_EQ(checker.Finish(), 0u);
}

// --- Planted mutations: each must be caught by invariant #6. -------------

TEST_F(ChaosRecoveryTest, MutationSkipJournalReplayIsCaught) {
  ms_.set_protocol_mutation(ddc::ProtocolMutation::kSkipJournalReplay);
  tp::ModelChecker checker(&ms_, tp::ModelChecker::OnViolation::kRecord);
  auto ctx = ms_.CreateContext(ddc::Pool::kCompute);
  DirtyPages(*ctx);
  ASSERT_GT(ms_.journal().live_records(), 0u);

  inj_.ScheduleCrashRestart(ctx->now() + 1 * kMillisecond,
                            /*down_for=*/500 * kMicrosecond);
  ctx->AdvanceTime(10 * kMillisecond);
  // The mutation drops the replay: acknowledged writes vanish.
  EXPECT_GT(ms_.ApplyPoolRestarts(*ctx), 0u);
  EXPECT_GT(checker.Finish(), 0u);
}

TEST_F(ChaosRecoveryTest, MutationSkipFencingIsCaught) {
  ms_.set_protocol_mutation(ddc::ProtocolMutation::kSkipFencing);
  tp::ModelChecker checker(&ms_, tp::ModelChecker::OnViolation::kRecord);
  auto caller = ms_.CreateContext(ddc::Pool::kCompute);
  inj_.ScheduleCrashRestart(caller->now() + 100, /*down_for=*/200);

  const Status st = Touch(*caller);
  EXPECT_TRUE(st.ok()) << st;                // the call still "works" ...
  EXPECT_EQ(runtime_.fenced_rpcs(), 0u);     // ... because nothing fenced it
  EXPECT_GT(checker.Finish(), 0u);           // but the stale lease is caught
}

TEST_F(ChaosRecoveryTest, MutationReplayDuplicateIsCaught) {
  ms_.set_protocol_mutation(ddc::ProtocolMutation::kReplayDuplicate);
  net::FaultSpec dup;
  dup.dup_p = 1.0;
  inj_.SetSpec(net::MessageKind::kPushdownRequest, dup);

  tp::ModelChecker checker(&ms_, tp::ModelChecker::OnViolation::kRecord);
  auto caller = ms_.CreateContext(ddc::Pool::kCompute);
  const Status st = Touch(*caller);
  EXPECT_TRUE(st.ok()) << st;
  EXPECT_GT(checker.Finish(), 0u);  // the duplicate re-applied
}

// --- TELEPORT_JOURNAL knob. ----------------------------------------------

TEST(JournalKnobTest, EnvironmentVariableEnablesTheJournal) {
  {
    ddc::MemorySystem ms(Config(), sim::CostParams::Default(), 16 << 20);
    EXPECT_FALSE(ms.journal_enabled());  // off by default: lossy legacy mode
  }
  ::setenv("TELEPORT_JOURNAL", "1", 1);
  {
    ddc::MemorySystem ms(Config(), sim::CostParams::Default(), 16 << 20);
    EXPECT_TRUE(ms.journal_enabled());
  }
  ::setenv("TELEPORT_JOURNAL", "0", 1);
  {
    ddc::MemorySystem ms(Config(), sim::CostParams::Default(), 16 << 20);
    EXPECT_FALSE(ms.journal_enabled());
  }
  ::unsetenv("TELEPORT_JOURNAL");
}

// --- Property: N consecutive crash-restart windows. ----------------------

struct WindowFixture {
  ddc::MemorySystem ms;
  net::FaultInjector inj;
  ddc::VAddr data = 0;

  explicit WindowFixture(bool journal_on)
      : ms(Config(), sim::CostParams::Default(), 32 << 20), inj(/*seed=*/11) {
    data = ms.space().Alloc(64 * kPage, "d");
    ms.SeedData();
    ms.set_journal_enabled(journal_on);
    ms.fabric().set_fault_injector(&inj);
  }

  void Dirty(ddc::ExecutionContext& ctx) {
    for (uint64_t p = 0; p < 64; ++p) {
      ctx.Store<int64_t>(data + p * kPage, static_cast<int64_t>(p) + 1);
    }
  }
};

constexpr int kWindows = 4;

// All N windows pass before anyone polls: one batched apply advances the
// epoch by N but counts each loss (or replays the journal) exactly once.
TEST(PoolRestartPropertyTest, BatchedWindowsCountEachLossOnce) {
  for (const bool journal_on : {false, true}) {
    SCOPED_TRACE(journal_on ? "journal on" : "journal off");
    WindowFixture f(journal_on);
    auto ctx = f.ms.CreateContext(ddc::Pool::kCompute);
    f.Dirty(*ctx);
    const uint64_t live = f.ms.journal().live_records();
    for (int w = 0; w < kWindows; ++w) {
      f.inj.ScheduleCrashRestart((w + 1) * 5 * kMillisecond,
                                 /*down_for=*/1 * kMillisecond);
    }
    ctx->AdvanceTime(kWindows * 5 * kMillisecond + 5 * kMillisecond);

    const ddc::MemorySystem::RestartOutcome out =
        f.ms.ApplyPoolRestartsAt(*ctx, ctx->now());
    EXPECT_EQ(f.ms.pool_restarts_applied(), kWindows);
    EXPECT_EQ(f.ms.pool_epoch(), 1u + kWindows);
    if (journal_on) {
      EXPECT_GT(live, 0u);
      EXPECT_EQ(out.lost, 0u);
      EXPECT_EQ(out.recovered, live);
    } else {
      EXPECT_EQ(live, 0u);
      EXPECT_GT(out.lost, 0u);
      EXPECT_EQ(out.recovered, 0u);
    }
    // Exactly once: an immediate re-poll finds nothing new to apply.
    const ddc::MemorySystem::RestartOutcome again =
        f.ms.ApplyPoolRestartsAt(*ctx, ctx->now());
    EXPECT_EQ(again.lost, 0u);
    EXPECT_EQ(again.recovered, 0u);
    EXPECT_EQ(f.ms.pool_epoch(), 1u + kWindows);
  }
}

// Accesses between the windows re-dirty the pool: journal off loses writes
// in every window; journal on recovers them in every window and never
// loses one.
TEST(PoolRestartPropertyTest, InterveningAccessesLoseOrRecoverPerWindow) {
  for (const bool journal_on : {false, true}) {
    SCOPED_TRACE(journal_on ? "journal on" : "journal off");
    WindowFixture f(journal_on);
    auto ctx = f.ms.CreateContext(ddc::Pool::kCompute);
    for (int w = 0; w < kWindows; ++w) {
      f.inj.ScheduleCrashRestart((w + 1) * 5 * kMillisecond,
                                 /*down_for=*/1 * kMillisecond);
    }
    for (int w = 0; w < kWindows; ++w) {
      SCOPED_TRACE("window " + std::to_string(w));
      f.Dirty(*ctx);
      const Nanos target = (w + 1) * 5 * kMillisecond + 2 * kMillisecond;
      ASSERT_LT(ctx->now(), target);
      ctx->AdvanceTime(target - ctx->now());
      const ddc::MemorySystem::RestartOutcome out =
          f.ms.ApplyPoolRestartsAt(*ctx, ctx->now());
      EXPECT_EQ(f.ms.pool_restarts_applied(), w + 1);
      EXPECT_EQ(f.ms.pool_epoch(), 2u + static_cast<uint64_t>(w));
      if (journal_on) {
        EXPECT_EQ(out.lost, 0u);
        EXPECT_GT(out.recovered, 0u);
      } else {
        EXPECT_GT(out.lost, 0u);
      }
    }
    if (journal_on) {
      EXPECT_EQ(f.ms.lost_pool_writes(), 0u);
      EXPECT_GT(f.ms.recovered_pool_writes(), 0u);
    } else {
      EXPECT_GT(f.ms.lost_pool_writes(), 0u);
      EXPECT_EQ(f.ms.recovered_pool_writes(), 0u);
    }
  }
}

}  // namespace
}  // namespace teleport
