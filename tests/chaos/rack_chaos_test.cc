// PR7 chaos soak: a 2-compute x 2-shard rack under open-loop multi-tenant
// traffic with crash-restart windows on BOTH memory shards, swept over 9
// fault seeds. With the journal on, every seed must (a) complete every
// session, (b) produce a bit-identical checksum across admission-control
// schedules and across a repeated run, and (c) keep the model checker's
// per-shard invariants 1-6 silent.

#include <cstdint>

#include <gtest/gtest.h>

#include "ddc/memory_system.h"
#include "net/faults.h"
#include "rack/traffic.h"
#include "teleport/model_checker.h"
#include "teleport/pushdown.h"

namespace teleport::rack {
namespace {

constexpr uint64_t kPage = 4096;

ddc::DdcConfig RackConfig() {
  ddc::DdcConfig cfg;
  cfg.platform = ddc::Platform::kBaseDdc;
  cfg.compute_cache_bytes = 16 * kPage;
  cfg.memory_pool_bytes = 1024 * kPage;
  cfg.compute_nodes = 2;
  cfg.memory_shards = 2;
  return cfg;
}

struct RunOutcome {
  uint64_t checksum = 0;
  uint64_t completed = 0;
  uint64_t failed = 0;
  uint64_t deferred = 0;
  uint64_t fenced = 0;
  uint64_t violations = 0;
  uint64_t epoch0 = 0;
  uint64_t epoch1 = 0;
  uint64_t lost = 0;
};

/// One full chaos run on a fresh rack: journal on, one crash-restart window
/// per shard placed inside the arrival span, model checker attached.
/// `families` is the WorkloadKind cycle length: 3 = the PR7 db/graph/mr
/// mix, 4 adds the OLTP index-probe tenant as the fourth family.
RunOutcome RunOnce(uint64_t seed, int max_concurrent, int families = 3) {
  ddc::MemorySystem ms(RackConfig(), sim::CostParams::Default(),
                       /*space_bytes=*/2 << 20);
  net::FaultInjector inj(/*seed=*/seed);
  ms.set_journal_enabled(true);
  ms.fabric().set_fault_injector(&inj);
  tp::PushdownRuntime runtime(&ms);
  tp::ModelChecker checker(&ms, tp::ModelChecker::OnViolation::kRecord);

  // ~9 ms of arrivals (180 sessions x 50 us); each shard takes one
  // crash-restart window mid-stream, at seed-staggered instants so the
  // sweep exercises different window/session alignments.
  inj.ScheduleCrashRestart(2 * kMillisecond + static_cast<Nanos>(seed) * 111,
                           /*down_for=*/300 * kMicrosecond, /*node=*/0);
  inj.ScheduleCrashRestart(5 * kMillisecond + static_cast<Nanos>(seed) * 77,
                           /*down_for=*/300 * kMicrosecond, /*node=*/1);

  TrafficConfig cfg;
  cfg.tenants = 4;
  cfg.sessions = 180;
  cfg.ops_per_session = 64;
  cfg.slice_pages = 64;
  cfg.mean_interarrival_ns = 50 * kMicrosecond;
  cfg.max_concurrent = max_concurrent;
  cfg.workload_families = families;
  cfg.seed = seed;
  const TrafficResult r = RunOpenLoop(ms, runtime, cfg);

  RunOutcome out;
  out.checksum = r.checksum;
  out.completed = r.completed;
  out.failed = r.failed;
  out.deferred = r.deferred;
  out.fenced = runtime.fenced_rpcs();
  out.violations = checker.Finish();
  out.epoch0 = ms.pool_epoch(0);
  out.epoch1 = ms.pool_epoch(1);
  out.lost = ms.lost_pool_writes();
  return out;
}

TEST(RackChaosSoakTest, NineSeedsBitIdenticalAcrossSchedules) {
  for (uint64_t seed = 1; seed <= 9; ++seed) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    const RunOutcome open = RunOnce(seed, /*max_concurrent=*/0);
    const RunOutcome limited = RunOnce(seed, /*max_concurrent=*/8);
    const RunOutcome replay = RunOnce(seed, /*max_concurrent=*/0);

    // Journal on: crash-restarts cost time, never answers or sessions.
    EXPECT_EQ(open.completed, 180u);
    EXPECT_EQ(open.failed, 0u);
    EXPECT_EQ(open.violations, 0u);
    EXPECT_EQ(limited.violations, 0u);

    // Both shards took their window: each lease epoch advanced once.
    EXPECT_GE(open.epoch0, 2u);
    EXPECT_GE(open.epoch1, 2u);

    // Bit-identical across a repeated run...
    EXPECT_EQ(replay.checksum, open.checksum);
    EXPECT_EQ(replay.fenced, open.fenced);
    // ...and across admission-control schedules.
    EXPECT_EQ(limited.checksum, open.checksum);
    EXPECT_EQ(limited.completed, open.completed);
    EXPECT_EQ(limited.failed, open.failed);
  }
}

// PR8: the same soak with the OLTP tenant family in the mix (tenant 3 runs
// the index-probe + version-bump-RMW kernel). The 2x2 sweep {open, limited
// admission} x {fresh run, replay} must stay bit-identical, with zero lost
// committed writes under the journal and the checker silent throughout.
TEST(RackChaosSoakTest, OltpTenantFamilyBitIdenticalWithZeroLostWrites) {
  for (uint64_t seed = 1; seed <= 9; ++seed) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    const RunOutcome open = RunOnce(seed, /*max_concurrent=*/0, /*families=*/4);
    const RunOutcome limited =
        RunOnce(seed, /*max_concurrent=*/8, /*families=*/4);
    const RunOutcome open_replay =
        RunOnce(seed, /*max_concurrent=*/0, /*families=*/4);
    const RunOutcome limited_replay =
        RunOnce(seed, /*max_concurrent=*/8, /*families=*/4);

    EXPECT_EQ(open.completed, 180u);
    EXPECT_EQ(open.failed, 0u);
    EXPECT_EQ(open.violations, 0u);
    EXPECT_EQ(limited.violations, 0u);
    EXPECT_GE(open.epoch0, 2u);
    EXPECT_GE(open.epoch1, 2u);

    // The journal replays every acknowledged write through both shard
    // crashes: the OLTP tenant's committed version-bump RMWs survive.
    EXPECT_EQ(open.lost, 0u);
    EXPECT_EQ(limited.lost, 0u);

    // 2x2: bit-identical across admission schedules and across replays.
    EXPECT_EQ(open_replay.checksum, open.checksum);
    EXPECT_EQ(limited_replay.checksum, limited.checksum);
    EXPECT_EQ(limited.checksum, open.checksum);
    EXPECT_EQ(limited.completed, open.completed);
    EXPECT_EQ(limited.failed, open.failed);

    // Adding the fourth family genuinely changes the mix: the checksum must
    // differ from the 3-family run of the same seed (tenant 3 swapped its
    // kernel), or the leg is not exercising anything new.
    const RunOutcome legacy = RunOnce(seed, /*max_concurrent=*/0);
    EXPECT_NE(open.checksum, legacy.checksum);
  }
}

}  // namespace
}  // namespace teleport::rack
