// Chaos soak: the three application engines run under a sweep of fault
// seeds — message drops, delays, duplicates, link flaps, and a memory-node
// crash-restart — and must produce answers bit-identical to the fault-free
// run. Faults cost virtual time, never correctness: the simulator keeps
// real data in host memory, so the resilience layer (retry/backoff,
// reliable-transport floor, crash-restart bookkeeping, §3.2) only has to
// preserve determinism and forward progress.

#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "bench/bench_util.h"
#include "db/query.h"
#include "graph/engine.h"
#include "mr/engine.h"
#include "net/faults.h"
#include "teleport/model_checker.h"
#include "teleport/pushdown.h"

namespace teleport {
namespace {

constexpr uint64_t kSeeds[] = {1, 2, 3, 5, 8, 13, 21, 34, 55};

net::FaultSpec LossySpec() {
  net::FaultSpec spec;
  spec.drop_p = 0.15;
  spec.delay_p = 0.10;
  spec.delay_ns = 3 * kMicrosecond;
  spec.dup_p = 0.05;
  return spec;
}

/// Arms `ms` with drops/delays/dups on every kind plus two link flaps and
/// one crash-restart of the memory node early in the run.
void ArmChaos(ddc::MemorySystem& ms, tp::PushdownRuntime& runtime,
              net::FaultInjector& inj, bool early_crashes = false) {
  inj.SetSpecAll(LossySpec());
  inj.AddLinkFlaps(/*start=*/2 * kMillisecond, /*duration=*/200 * kMicrosecond,
                   /*period=*/5 * kMillisecond, /*count=*/2);
  inj.ScheduleCrashRestart(/*at=*/20 * kMillisecond,
                           /*down_for=*/1 * kMillisecond);
  if (early_crashes) {
    // The journal-on sweep crashes early enough that even the short DB and
    // graph runs cross a recovery (their whole run fits before the 20ms
    // window above). Disjoint from the flaps at 2ms/7ms and the 20ms crash.
    inj.ScheduleCrashRestart(/*at=*/150 * kMicrosecond,
                             /*down_for=*/50 * kMicrosecond);
    inj.ScheduleCrashRestart(/*at=*/5 * kMillisecond,
                             /*down_for=*/500 * kMicrosecond);
  }
  ms.fabric().set_fault_injector(&inj);
  ms.set_retry_seed(0xdb0);
  runtime.set_retry_seed(0xdb1);
}

struct Observed {
  int64_t checksum = 0;
  Nanos elapsed = 0;
  Nanos retry_ns = 0;
  uint64_t retries = 0;
  uint64_t fallbacks = 0;
  uint64_t lost = 0;       ///< pool writes dropped by the crash-restart
  uint64_t recovered = 0;  ///< pool writes replayed from the journal
  int restarts = 0;        ///< crash-restart windows actually applied
};

Observed RunDb(uint64_t fault_seed, bool faults, bool journal) {
  bench::DeployOptions deploy;
  deploy.cache_fraction = 0.05;
  auto d = bench::MakeDb(ddc::Platform::kBaseDdc, 0.3, deploy);
  d.ms->set_journal_enabled(journal);
  net::FaultInjector inj(fault_seed);
  if (faults) ArmChaos(*d.ms, *d.runtime, inj, /*early_crashes=*/journal);
  tp::ModelChecker checker(d.ms.get(), tp::ModelChecker::OnViolation::kRecord);
  db::QueryOptions opts;
  opts.runtime = d.runtime.get();
  opts.push_ops = db::DefaultTeleportOps("q6");
  const db::QueryResult r = db::RunQ6(*d.ctx, *d.database, opts);
  EXPECT_EQ(checker.Finish(), 0u);
  Observed o;
  o.checksum = r.checksum;
  o.elapsed = r.total_ns;
  o.retry_ns = d.runtime->total_breakdown().retry_ns;
  o.retries = d.ctx->metrics().retries;
  o.fallbacks = d.ctx->metrics().fallbacks;
  o.lost = d.ms->lost_pool_writes();
  o.recovered = d.ms->recovered_pool_writes();
  o.restarts = d.ms->pool_restarts_applied();
  return o;
}

Observed RunGraph(uint64_t fault_seed, bool faults, bool journal) {
  auto d = bench::MakeGraph(ddc::Platform::kBaseDdc, 2000, 6);
  d.ms->set_journal_enabled(journal);
  net::FaultInjector inj(fault_seed);
  if (faults) ArmChaos(*d.ms, *d.runtime, inj, /*early_crashes=*/journal);
  tp::ModelChecker checker(d.ms.get(), tp::ModelChecker::OnViolation::kRecord);
  graph::GasOptions opts;
  opts.runtime = d.runtime.get();
  opts.push_phases = {graph::Phase::kFinalize, graph::Phase::kGather,
                      graph::Phase::kScatter};
  const graph::GasResult r = graph::RunSssp(*d.ctx, d.graph, opts);
  EXPECT_EQ(checker.Finish(), 0u);
  Observed o;
  o.checksum = r.checksum;
  o.elapsed = r.total_ns;
  o.retry_ns = d.runtime->total_breakdown().retry_ns;
  o.retries = d.ctx->metrics().retries;
  o.fallbacks = d.ctx->metrics().fallbacks;
  o.lost = d.ms->lost_pool_writes();
  o.recovered = d.ms->recovered_pool_writes();
  o.restarts = d.ms->pool_restarts_applied();
  return o;
}

Observed RunMr(uint64_t fault_seed, bool faults, bool journal) {
  auto d = bench::MakeMr(ddc::Platform::kBaseDdc, 256 << 10);
  d.ms->set_journal_enabled(journal);
  net::FaultInjector inj(fault_seed);
  if (faults) ArmChaos(*d.ms, *d.runtime, inj, /*early_crashes=*/journal);
  tp::ModelChecker checker(d.ms.get(), tp::ModelChecker::OnViolation::kRecord);
  mr::MrOptions opts;
  opts.runtime = d.runtime.get();
  opts.push_phases = {mr::MrPhase::kMapShuffle};
  const mr::MrResult r = mr::RunWordCount(*d.ctx, d.corpus, opts);
  EXPECT_EQ(checker.Finish(), 0u);
  Observed o;
  o.checksum = r.checksum;
  o.elapsed = r.total_ns;
  o.retry_ns = d.runtime->total_breakdown().retry_ns;
  o.retries = d.ctx->metrics().retries;
  o.fallbacks = d.ctx->metrics().fallbacks;
  o.lost = d.ms->lost_pool_writes();
  o.recovered = d.ms->recovered_pool_writes();
  o.restarts = d.ms->pool_restarts_applied();
  return o;
}

using Runner = Observed (*)(uint64_t, bool, bool);

class ChaosSoakTest : public ::testing::TestWithParam<Runner> {};

TEST_P(ChaosSoakTest, AnswersAreBitIdenticalAcrossFaultSeeds) {
  Runner run = GetParam();
  const Observed clean = run(/*fault_seed=*/0, /*faults=*/false, false);
  EXPECT_EQ(clean.retry_ns, 0);
  EXPECT_EQ(clean.retries, 0u);
  EXPECT_EQ(clean.fallbacks, 0u);
  ASSERT_GT(clean.elapsed, 0);
  uint64_t total_retries = 0;
  for (const uint64_t seed : kSeeds) {
    const Observed faulty = run(seed, /*faults=*/true, /*journal=*/false);
    // Faults must never change the application's answer. (Timing may move
    // either way: retries add virtual time, while a crash-restart empties
    // the pool and makes later refaults cheaper.)
    EXPECT_EQ(faulty.checksum, clean.checksum) << "seed " << seed;
    EXPECT_GT(faulty.elapsed, 0) << "seed " << seed;
    EXPECT_GE(faulty.retry_ns, 0) << "seed " << seed;
    total_retries += faulty.retries;
  }
  // Across a whole sweep the lossy schedule must actually bite.
  EXPECT_GT(total_retries, 0u);
}

TEST_P(ChaosSoakTest, SameSeedIsReproducibleToTheNanosecond) {
  Runner run = GetParam();
  const Observed a = run(/*fault_seed=*/13, /*faults=*/true, false);
  const Observed b = run(/*fault_seed=*/13, /*faults=*/true, false);
  EXPECT_EQ(a.checksum, b.checksum);
  EXPECT_EQ(a.elapsed, b.elapsed);
  EXPECT_EQ(a.retry_ns, b.retry_ns);
  EXPECT_EQ(a.retries, b.retries);
  EXPECT_EQ(a.fallbacks, b.fallbacks);
}

// PR6 hardening re-run: the same chaos sweep with the redo journal on. The
// crash-restart still empties pool DRAM, but every acknowledged write is
// replayed — zero lost writes across all seeds and engines, answers still
// bit-identical to the fault-free run, and the in-run model checker holds
// recovery invariant #6 the whole way.
TEST_P(ChaosSoakTest, JournalOnRecoversEveryAcknowledgedWrite) {
  Runner run = GetParam();
  const Observed clean = run(/*fault_seed=*/0, /*faults=*/false, false);
  int total_restarts = 0;
  uint64_t total_recovered = 0;
  for (const uint64_t seed : kSeeds) {
    const Observed j = run(seed, /*faults=*/true, /*journal=*/true);
    EXPECT_EQ(j.checksum, clean.checksum) << "seed " << seed;
    EXPECT_EQ(j.lost, 0u) << "seed " << seed;
    EXPECT_GT(j.elapsed, 0) << "seed " << seed;
    total_restarts += j.restarts;
    total_recovered += j.recovered;
  }
  // The sweep must actually exercise recovery, not just never crash.
  EXPECT_GT(total_restarts, 0);
  EXPECT_GT(total_recovered, 0u);

  // Journal-on runs are as deterministic as everything else.
  const Observed a = run(/*fault_seed=*/13, /*faults=*/true, /*journal=*/true);
  const Observed b = run(/*fault_seed=*/13, /*faults=*/true, /*journal=*/true);
  EXPECT_EQ(a.checksum, b.checksum);
  EXPECT_EQ(a.elapsed, b.elapsed);
  EXPECT_EQ(a.recovered, b.recovered);
}

INSTANTIATE_TEST_SUITE_P(Engines, ChaosSoakTest,
                         ::testing::Values(&RunDb, &RunGraph, &RunMr),
                         [](const ::testing::TestParamInfo<Runner>& info) {
                           switch (info.index) {
                             case 0:
                               return "Db";
                             case 1:
                               return "Graph";
                             default:
                               return "Mr";
                           }
                         });

// A zero-probability injector must be indistinguishable from no injector —
// the resilience layer's fault-free fast paths are bit-identical, down to
// the virtual-time nanosecond.
TEST(ChaosFaultFreeTest, ZeroProbabilityInjectorChangesNothing) {
  const Observed plain = RunDb(/*fault_seed=*/0, /*faults=*/false, false);

  bench::DeployOptions deploy;
  deploy.cache_fraction = 0.05;
  auto d = bench::MakeDb(ddc::Platform::kBaseDdc, 0.3, deploy);
  net::FaultInjector inj(/*seed=*/99);  // attached but all probabilities 0
  d.ms->fabric().set_fault_injector(&inj);
  tp::ModelChecker checker(d.ms.get(), tp::ModelChecker::OnViolation::kRecord);
  db::QueryOptions opts;
  opts.runtime = d.runtime.get();
  opts.push_ops = db::DefaultTeleportOps("q6");
  const db::QueryResult r = db::RunQ6(*d.ctx, *d.database, opts);

  EXPECT_EQ(checker.Finish(), 0u);
  EXPECT_EQ(r.checksum, plain.checksum);
  EXPECT_EQ(r.total_ns, plain.elapsed);
  EXPECT_EQ(d.ctx->metrics().retries, 0u);
  EXPECT_EQ(d.runtime->total_breakdown().retry_ns, 0);
}

// The memory node crash-restarts mid-run: unflushed pool writes since the
// last flush are lost and reported; pages flushed to storage survive; the
// compute cache survives. The next pushdown observes the loss.
TEST(ChaosCrashRestartTest, LostPoolWritesAreReported) {
  constexpr uint64_t kPage = 4096;
  ddc::DdcConfig cfg;
  cfg.platform = ddc::Platform::kBaseDdc;
  cfg.compute_cache_bytes = 8 * kPage;
  cfg.memory_pool_bytes = 1024 * kPage;
  ddc::MemorySystem ms(cfg, sim::CostParams::Default(), 16 << 20);
  tp::PushdownRuntime runtime(&ms);
  net::FaultInjector inj(/*seed=*/4);
  ms.fabric().set_fault_injector(&inj);

  const ddc::VAddr a = ms.space().Alloc(64 * kPage, "d");
  ms.SeedData();
  tp::ModelChecker checker(&ms, tp::ModelChecker::OnViolation::kRecord);
  auto ctx = ms.CreateContext(ddc::Pool::kCompute);
  // Dirty many pages; the small cache forces writebacks into the pool,
  // which mark pool copies dirty w.r.t. storage.
  for (uint64_t p = 0; p < 64; ++p) {
    ctx->Store<int64_t>(a + p * kPage, static_cast<int64_t>(p) + 1);
  }
  ASSERT_GT(ctx->metrics().dirty_writebacks, 0u);

  // Crash-restart the node entirely in the future, then advance past it.
  const Nanos at = ctx->now() + 1 * kMillisecond;
  inj.ScheduleCrashRestart(at, /*down_for=*/500 * kMicrosecond);
  ctx->AdvanceTime(10 * kMillisecond);
  const uint64_t lost = ms.ApplyPoolRestarts(*ctx);
  EXPECT_GT(lost, 0u);
  EXPECT_EQ(ms.lost_pool_writes(), lost);
  EXPECT_EQ(ctx->metrics().lost_pool_writes, lost);
  EXPECT_EQ(ms.pool_restarts_applied(), 1);
  EXPECT_EQ(ms.memory_pool_pages_used(), 0u);  // pool DRAM came back empty

  // Applying the same restart twice is a no-op.
  EXPECT_EQ(ms.ApplyPoolRestarts(*ctx), 0u);

  // The system keeps running: reads re-fault and still see the stored
  // values (a restart loses placement, not the simulated ground truth).
  for (uint64_t p = 0; p < 64; ++p) {
    EXPECT_EQ(ctx->Load<int64_t>(a + p * kPage), static_cast<int64_t>(p) + 1);
  }
  EXPECT_FALSE(runtime.panicked());
  EXPECT_EQ(checker.Finish(), 0u);
}

// §3.2 escape hatch: when the pushdown request cannot get through but the
// pool is restartable, FallbackPolicy::kLocal cancels and re-runs the
// function locally instead of failing the call or latching a panic.
TEST(ChaosFallbackTest, LocalFallbackRunsTheFunctionExactlyOnce) {
  constexpr uint64_t kPage = 4096;
  ddc::DdcConfig cfg;
  cfg.platform = ddc::Platform::kBaseDdc;
  cfg.compute_cache_bytes = 32 * kPage;
  cfg.memory_pool_bytes = 1024 * kPage;
  ddc::MemorySystem ms(cfg, sim::CostParams::Default(), 16 << 20);
  tp::PushdownRuntime runtime(&ms);
  net::FaultInjector inj(/*seed=*/6);
  net::FaultSpec drop_requests;
  drop_requests.drop_p = 1.0;  // pushdown requests never get through
  inj.SetSpec(net::MessageKind::kPushdownRequest, drop_requests);
  ms.fabric().set_fault_injector(&inj);

  const ddc::VAddr a = ms.space().Alloc(16 * kPage, "d");
  ms.SeedData();
  tp::ModelChecker checker(&ms, tp::ModelChecker::OnViolation::kRecord);
  auto caller = ms.CreateContext(ddc::Pool::kCompute);

  tp::PushdownFlags flags;
  flags.fallback = tp::FallbackPolicy::kLocal;
  int executions = 0;
  int64_t sum = 0;
  const Status st = runtime.Call(
      *caller,
      [&](ddc::ExecutionContext& ctx) {
        ++executions;
        for (uint64_t p = 0; p < 16; ++p) {
          sum += ctx.Load<int64_t>(a + p * kPage);
        }
        return Status::OK();
      },
      flags);
  ASSERT_TRUE(st.ok()) << st;
  EXPECT_EQ(executions, 1);
  EXPECT_EQ(runtime.fallback_calls(), 1u);
  EXPECT_EQ(caller->metrics().fallbacks, 1u);
  EXPECT_FALSE(runtime.panicked());
  // The recovery time is visible in the breakdown and sums exactly.
  EXPECT_GT(runtime.last_breakdown().retry_ns, 0);
  EXPECT_EQ(runtime.last_breakdown().Total(), caller->now());
  // A try_cancel went out (or was dropped trying); the kind is accounted.
  EXPECT_GT(inj.drops_of(net::MessageKind::kPushdownRequest), 0u);

  // Without the fallback flag the same schedule still completes — the
  // reliable transport floor carries the request after the retry budget.
  const Status st2 = runtime.Call(*caller, [&](ddc::ExecutionContext& ctx) {
    (void)ctx.Load<int64_t>(a);
    return Status::OK();
  });
  EXPECT_TRUE(st2.ok()) << st2;
  EXPECT_EQ(runtime.fallback_calls(), 1u);  // no new fallback
  EXPECT_EQ(checker.Finish(), 0u);
}

}  // namespace
}  // namespace teleport
