// Differential golden-reference harness: each application engine (DBMS Q6,
// graph SSSP, MapReduce WordCount) runs under a sweep of seeded-random
// schedules — the engine interleaved with an interfering compute-pool
// mutator at access granularity — across coherence modes x sync strategies,
// and every run's answer must be bit-identical to a sequential golden run.
// A ModelChecker shadows the coherence protocol in every run; any
// divergence (wrong answer, checker violation, corrupted interferer state)
// is minimized to the shortest failing schedule prefix and dumped as a
// replayable trace.
//
// The simulator keeps real data in host memory, so a *correct* protocol can
// never change an answer — schedules move timing, not bytes. That is
// exactly what makes the golden comparison a lock: if an engine or the
// coherence layer ever grows real schedule-dependent state, this harness
// catches it on the spot with a reproducer.

#include <cstdint>
#include <functional>
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "bench/bench_util.h"
#include "db/query.h"
#include "ddc/memory_system.h"
#include "graph/engine.h"
#include "mr/engine.h"
#include "sim/coop_task.h"
#include "sim/interleaver.h"
#include "teleport/model_checker.h"
#include "teleport/pushdown.h"

namespace teleport {
namespace {

using ddc::CoherenceMode;
using ddc::Pool;
using ddc::ProtocolMutation;
using ddc::VAddr;
using tp::SyncStrategy;

constexpr uint64_t kPage = 4096;

// --- Sweep dimensions --------------------------------------------------------

struct Combo {
  CoherenceMode coherence;
  SyncStrategy sync;
};

constexpr Combo kCombos[] = {
    {CoherenceMode::kMesi, SyncStrategy::kOnDemand},
    {CoherenceMode::kPso, SyncStrategy::kOnDemand},
    {CoherenceMode::kWeakOrdering, SyncStrategy::kOnDemand},
    {CoherenceMode::kMesi, SyncStrategy::kEager},
    {CoherenceMode::kPso, SyncStrategy::kEager},
    {CoherenceMode::kWeakOrdering, SyncStrategy::kEager},
};

// 6 combos x 87 seeds = 522 randomized runs per engine; the acceptance
// floor is 500 *distinct* schedules, measured by trace signature.
constexpr int kSeedsPerCombo = 87;
constexpr uint64_t kDistinctFloor = 500;

// Workload sizes: small enough that a 522-run sweep stays in seconds, big
// enough that every engine still pushes work down and faults real pages.
constexpr double kDbScale = 0.05;  // 3000 lineitem rows
constexpr uint64_t kGraphVertices = 400;
constexpr uint64_t kGraphDegree = 4;
constexpr uint64_t kMrBytes = 20 << 10;

// Engine tasks yield every `quantum` charged operations on the hooked
// compute context; the interferer yields on every access for the finest
// interleaving. Quanta are tuned per engine so each contributes hundreds
// of preemption points per run (enough entropy for >= 500 distinct
// schedules) without drowning the sweep in handoffs.
constexpr int kDbQuantum = 64;
constexpr int kGraphQuantum = 16;
constexpr int kMrQuantum = 256;

tp::PushdownFlags FlagsFor(const Combo& c) {
  tp::PushdownFlags f;
  f.coherence = c.coherence;
  f.sync = c.sync;
  return f;
}

// --- Schedule signatures -----------------------------------------------------

uint64_t TraceSignature(const std::vector<uint32_t>& trace) {
  uint64_t h = 1469598103934665603ull;  // FNV-1a
  for (const uint32_t step : trace) {
    h ^= step;
    h *= 1099511628211ull;
  }
  h ^= trace.size();
  h *= 1099511628211ull;
  return h;
}

// --- The interferer ----------------------------------------------------------
//
// A compute-pool thread that hammers its own private scratch region while
// the engine runs: its evictions race the engine's pages through the shared
// compute cache, and its accesses land inside active pushdown sessions at
// schedule-dependent points. It folds only values it wrote itself, so its
// digest is schedule-invariant — a third differential check.

constexpr int kScratchPages = 8;
constexpr int kInterfererRounds = 12;

uint64_t InterfererValue(int round, int page) {
  uint64_t v = static_cast<uint64_t>(round) * 0x9e3779b97f4a7c15ull +
               static_cast<uint64_t>(page) + 1;
  v ^= v >> 31;
  return v;
}

uint64_t FoldDigest(uint64_t digest, uint64_t v) {
  digest ^= v;
  digest *= 1099511628211ull;
  return digest;
}

uint64_t InterfererBody(ddc::ExecutionContext& ctx, VAddr scratch) {
  uint64_t digest = 1469598103934665603ull;
  for (int r = 0; r < kInterfererRounds; ++r) {
    for (int p = 0; p < kScratchPages; ++p) {
      const VAddr addr = scratch + static_cast<VAddr>(p) * kPage;
      ctx.Store<uint64_t>(addr, InterfererValue(r, p));
      digest = FoldDigest(digest, ctx.Load<uint64_t>(addr));
    }
  }
  return digest;
}

uint64_t ExpectedInterfererDigest() {
  uint64_t digest = 1469598103934665603ull;
  for (int r = 0; r < kInterfererRounds; ++r) {
    for (int p = 0; p < kScratchPages; ++p) {
      digest = FoldDigest(digest, InterfererValue(r, p));
    }
  }
  return digest;
}

// --- One observed run --------------------------------------------------------

struct RunOut {
  int64_t answer = 0;
  uint64_t interferer_digest = 0;
  uint64_t checker_violations = 0;
  std::vector<uint32_t> trace;
};

/// Interleaves `engine_body` (confined to `engine_ctx`) with the standard
/// interferer under `schedule`, recording the schedule trace.
void RunInterleaved(ddc::MemorySystem& ms, ddc::ExecutionContext& engine_ctx,
                    const std::function<void()>& engine_body, int quantum,
                    sim::Schedule* schedule, RunOut* out) {
  const VAddr scratch =
      ms.space().Alloc(kScratchPages * kPage, "interferer-scratch");
  auto ictx = ms.CreateContext(Pool::kCompute);
  uint64_t digest = 0;
  {
    sim::CoopTask engine({&engine_ctx}, engine_body, quantum);
    sim::CoopTask interferer(
        {ictx.get()}, [&] { digest = InterfererBody(*ictx, scratch); },
        /*quantum=*/1);
    sim::Interleaver il;
    il.Add(&engine);
    il.Add(&interferer);
    il.set_schedule(schedule);
    il.set_record_trace(true);
    il.Run();
    out->trace = il.trace();
  }
  out->interferer_digest = digest;
}

/// One engine run on a fresh deployment. `schedule == nullptr` is the
/// sequential golden: the engine alone, default scheduling, no interferer
/// (the digest slot is filled with the expected constant so golden RunOuts
/// compare clean). A ModelChecker shadows the protocol either way.
using CaseFn = RunOut (*)(sim::Schedule* schedule,
                          const tp::PushdownFlags& flags,
                          ProtocolMutation mutation);

RunOut RunDbCase(sim::Schedule* schedule, const tp::PushdownFlags& flags,
                 ProtocolMutation mutation) {
  bench::DeployOptions deploy;
  deploy.cache_fraction = 0.05;
  auto d = bench::MakeDb(ddc::Platform::kBaseDdc, kDbScale, deploy);
  d.ms->set_protocol_mutation(mutation);
  tp::ModelChecker checker(d.ms.get(), tp::ModelChecker::OnViolation::kRecord);
  db::QueryOptions opts;
  opts.runtime = d.runtime.get();
  // Push only the leading selection + projection: the remaining selections
  // and the aggregation stay compute-side, so the hooked context yields
  // often enough to open up a large schedule space.
  opts.push_ops = {"Selection(shipdate)", "Projection"};
  opts.flags = flags;
  RunOut out;
  if (schedule == nullptr) {
    out.answer = db::RunQ6(*d.ctx, *d.database, opts).checksum;
    out.interferer_digest = ExpectedInterfererDigest();
  } else {
    RunInterleaved(
        *d.ms, *d.ctx,
        [&] { out.answer = db::RunQ6(*d.ctx, *d.database, opts).checksum; },
        kDbQuantum, schedule, &out);
  }
  out.checker_violations = checker.Finish();
  return out;
}

RunOut RunGraphCase(sim::Schedule* schedule, const tp::PushdownFlags& flags,
                    ProtocolMutation mutation) {
  auto d = bench::MakeGraph(ddc::Platform::kBaseDdc, kGraphVertices,
                            kGraphDegree);
  d.ms->set_protocol_mutation(mutation);
  tp::ModelChecker checker(d.ms.get(), tp::ModelChecker::OnViolation::kRecord);
  graph::GasOptions opts;
  opts.runtime = d.runtime.get();
  opts.push_phases = {graph::Phase::kFinalize, graph::Phase::kGather,
                      graph::Phase::kScatter};
  opts.flags = flags;
  RunOut out;
  if (schedule == nullptr) {
    out.answer = graph::RunWidestPath(*d.ctx, d.graph, opts).checksum;
    out.interferer_digest = ExpectedInterfererDigest();
  } else {
    RunInterleaved(
        *d.ms, *d.ctx,
        [&] {
          out.answer = graph::RunWidestPath(*d.ctx, d.graph, opts).checksum;
        },
        kGraphQuantum, schedule, &out);
  }
  out.checker_violations = checker.Finish();
  return out;
}

RunOut RunMrCase(sim::Schedule* schedule, const tp::PushdownFlags& flags,
                 ProtocolMutation mutation) {
  auto d = bench::MakeMr(ddc::Platform::kBaseDdc, kMrBytes);
  d.ms->set_protocol_mutation(mutation);
  tp::ModelChecker checker(d.ms.get(), tp::ModelChecker::OnViolation::kRecord);
  mr::MrOptions opts;
  opts.runtime = d.runtime.get();
  opts.push_phases = {mr::MrPhase::kMapShuffle};
  opts.flags = flags;
  RunOut out;
  if (schedule == nullptr) {
    out.answer = mr::RunWordCount(*d.ctx, d.corpus, opts).checksum;
    out.interferer_digest = ExpectedInterfererDigest();
  } else {
    RunInterleaved(
        *d.ms, *d.ctx,
        [&] { out.answer = mr::RunWordCount(*d.ctx, d.corpus, opts).checksum; },
        kMrQuantum, schedule, &out);
  }
  out.checker_violations = checker.Finish();
  return out;
}

// --- Reproducer: replay + prefix minimization --------------------------------

/// True when replaying `trace` on a fresh run still fails. Replay past the
/// end of the trace falls back to smallest-clock, so any prefix is a
/// complete, deterministic schedule.
using FailPred = std::function<bool(const std::vector<uint32_t>& trace)>;

/// Shortest failing prefix by binary search over the prefix length. The
/// predicate need not be monotone in the prefix; the result is verified to
/// fail before being returned (falling back to the full trace if the
/// search landed on a passing prefix).
std::vector<uint32_t> MinimizeTrace(const FailPred& fails,
                                    const std::vector<uint32_t>& trace) {
  size_t lo = 0;
  size_t hi = trace.size();
  while (lo < hi) {
    const size_t mid = lo + (hi - lo) / 2;
    const std::vector<uint32_t> prefix(trace.begin(), trace.begin() + mid);
    if (fails(prefix)) {
      hi = mid;
    } else {
      lo = mid + 1;
    }
  }
  std::vector<uint32_t> best(trace.begin(), trace.begin() + hi);
  if (!fails(best)) return trace;
  return best;
}

/// Fails the current test with a minimized, replayable schedule dump.
void ReportDivergence(CaseFn run, const tp::PushdownFlags& flags,
                      const RunOut& bad, int64_t golden,
                      uint64_t expected_digest, uint64_t seed) {
  const FailPred fails = [&](const std::vector<uint32_t>& t) {
    sim::ReplaySchedule replay(t);
    const RunOut o = run(&replay, flags, ProtocolMutation::kNone);
    return o.answer != golden || o.checker_violations != 0 ||
           o.interferer_digest != expected_digest;
  };
  const std::vector<uint32_t> minimized = MinimizeTrace(fails, bad.trace);
  ADD_FAILURE() << "divergence under seed " << seed << " (coherence "
                << ddc::CoherenceModeToString(flags.coherence) << ", sync "
                << tp::SyncStrategyToString(flags.sync) << "): answer "
                << bad.answer << " vs golden " << golden << ", "
                << bad.checker_violations
                << " checker violations; minimized reproducer ("
                << minimized.size() << " of " << bad.trace.size()
                << " steps): " << sim::TraceToString(minimized);
}

// --- The sweep ---------------------------------------------------------------

class DifferentialTest : public ::testing::TestWithParam<CaseFn> {};

TEST_P(DifferentialTest, ExploredSchedulesMatchSequentialGolden) {
  CaseFn run = GetParam();

  // Sequential goldens, one per combo. Coherence mode and sync strategy
  // trade timing, never bytes: all goldens must agree with each other.
  int64_t golden = 0;
  bool have_golden = false;
  for (const Combo& combo : kCombos) {
    const RunOut g = run(nullptr, FlagsFor(combo), ProtocolMutation::kNone);
    EXPECT_EQ(g.checker_violations, 0u)
        << "golden run violated the protocol spec, coherence "
        << ddc::CoherenceModeToString(combo.coherence);
    if (!have_golden) {
      golden = g.answer;
      have_golden = true;
    } else {
      EXPECT_EQ(g.answer, golden)
          << "golden differs across combos, coherence "
          << ddc::CoherenceModeToString(combo.coherence) << ", sync "
          << tp::SyncStrategyToString(combo.sync);
    }
  }

  const uint64_t expected_digest = ExpectedInterfererDigest();
  std::set<uint64_t> signatures;
  uint64_t runs = 0;
  uint64_t seed = 0;
  for (const Combo& combo : kCombos) {
    const tp::PushdownFlags flags = FlagsFor(combo);
    for (int i = 0; i < kSeedsPerCombo; ++i) {
      ++seed;
      sim::RandomSchedule schedule(seed);
      const RunOut o = run(&schedule, flags, ProtocolMutation::kNone);
      ++runs;
      signatures.insert(TraceSignature(o.trace));
      if (o.answer != golden || o.checker_violations != 0 ||
          o.interferer_digest != expected_digest) {
        ReportDivergence(run, flags, o, golden, expected_digest, seed);
        return;  // one minimized reproducer is enough; don't cascade
      }
    }
  }
  EXPECT_EQ(runs, static_cast<uint64_t>(kSeedsPerCombo) *
                      (sizeof(kCombos) / sizeof(kCombos[0])));
  // The sweep must actually explore: >= 500 *distinct* interleavings.
  EXPECT_GE(signatures.size(), kDistinctFloor);
}

INSTANTIATE_TEST_SUITE_P(Engines, DifferentialTest,
                         ::testing::Values(&RunDbCase, &RunGraphCase,
                                           &RunMrCase),
                         [](const ::testing::TestParamInfo<CaseFn>& info) {
                           switch (info.index) {
                             case 0:
                               return "Db";
                             case 1:
                               return "Graph";
                             default:
                               return "Mr";
                           }
                         });

// --- Reproducer machinery, exercised on a planted protocol bug --------------
//
// A micro-scenario cheap enough to replay dozens of times during
// minimization: a compute-side writer and a memory-side reader race over
// eight pages inside an active kMesi session. With kSkipPageReturn planted,
// dirty compute pages stop riding back to the pool and the checker flags a
// stale read — on schedules where a racing read lands after the write.

RunOut RunMicroCase(sim::Schedule* schedule, const tp::PushdownFlags& flags,
                    ProtocolMutation mutation) {
  ddc::DdcConfig cfg;
  cfg.platform = ddc::Platform::kBaseDdc;
  cfg.compute_cache_bytes = 16 * kPage;
  cfg.memory_pool_bytes = 1024 * kPage;
  ddc::MemorySystem ms(cfg, sim::CostParams::Default(), 16 << 20);
  const VAddr base = ms.space().Alloc(32 * kPage, "d");
  ms.SeedData();
  ms.set_protocol_mutation(mutation);
  tp::ModelChecker checker(&ms, tp::ModelChecker::OnViolation::kRecord);
  auto cc = ms.CreateContext(Pool::kCompute);
  auto mc = ms.CreateContext(Pool::kMemory);
  ms.BeginPushdownSession(flags.coherence);
  int64_t sum = 0;
  RunOut out;
  {
    sim::CoopTask writer({cc.get()}, [&] {
      for (int p = 0; p < 8; ++p) {
        cc->Store<int64_t>(base + static_cast<VAddr>(p) * kPage, p + 1);
      }
    });
    sim::CoopTask reader({mc.get()}, [&] {
      for (int p = 7; p >= 0; --p) {
        sum += mc->Load<int64_t>(base + static_cast<VAddr>(p) * kPage);
      }
    });
    sim::Interleaver il;
    il.Add(&writer);
    il.Add(&reader);
    il.set_schedule(schedule);
    il.set_record_trace(true);
    il.Run();
    out.trace = il.trace();
  }
  ms.EndPushdownSession();
  out.answer = sum;  // legitimately schedule-dependent; not compared
  out.checker_violations = checker.Finish();
  return out;
}

TEST(DiffReproducerTest, PlantedBugIsCaughtMinimizedAndReplayable) {
  tp::PushdownFlags flags;  // kMesi, kOnDemand

  // Deterministic seed scan until the planted bug bites.
  std::vector<uint32_t> failing;
  uint64_t failing_seed = 0;
  for (uint64_t seed = 1; seed <= 64 && failing.empty(); ++seed) {
    sim::RandomSchedule schedule(seed);
    const RunOut o =
        RunMicroCase(&schedule, flags, ProtocolMutation::kSkipPageReturn);
    if (o.checker_violations > 0) {
      failing = o.trace;
      failing_seed = seed;
    }
  }
  ASSERT_FALSE(failing.empty()) << "planted bug never caught in 64 seeds";

  const FailPred fails = [&](const std::vector<uint32_t>& t) {
    sim::ReplaySchedule replay(t);
    return RunMicroCase(&replay, flags, ProtocolMutation::kSkipPageReturn)
               .checker_violations > 0;
  };
  // The dumped trace replays to the same failure...
  ASSERT_TRUE(fails(failing)) << "seed " << failing_seed
                              << " trace did not replay";
  // ...and minimization yields a (weakly) shorter failing prefix.
  const std::vector<uint32_t> minimized = MinimizeTrace(fails, failing);
  EXPECT_TRUE(fails(minimized));
  EXPECT_LE(minimized.size(), failing.size());
  // The same minimized schedule is clean without the mutation: the failure
  // is the planted bug, not the harness.
  sim::ReplaySchedule replay(minimized);
  EXPECT_EQ(RunMicroCase(&replay, flags, ProtocolMutation::kNone)
                .checker_violations,
            0u);
}

// Replay fidelity at engine scale: re-running a recorded random schedule
// through ReplaySchedule reproduces the identical interleaving (zero
// divergences) and the identical observables.
TEST(DiffReplayTest, RecordedEngineScheduleReplaysExactly) {
  const tp::PushdownFlags flags = FlagsFor(kCombos[0]);
  sim::RandomSchedule schedule(0xd1ff);
  const RunOut a = RunMrCase(&schedule, flags, ProtocolMutation::kNone);
  ASSERT_FALSE(a.trace.empty());

  sim::ReplaySchedule replay(a.trace);
  const RunOut b = RunMrCase(&replay, flags, ProtocolMutation::kNone);
  EXPECT_EQ(replay.divergences(), 0u);
  EXPECT_EQ(b.answer, a.answer);
  EXPECT_EQ(b.interferer_digest, a.interferer_digest);
  EXPECT_EQ(TraceSignature(b.trace), TraceSignature(a.trace));
}

}  // namespace
}  // namespace teleport
