// Golden-string locks for text formats that downstream tooling parses
// (bench banners, EXPERIMENTS.md extraction, log scrapers). These compare
// full output strings byte-for-byte: any accidental reordering, renamed
// counter, or changed separator fails loudly here instead of silently
// breaking a dashboard regex.

#include <string>

#include <gtest/gtest.h>

#include "bench/bench_util.h"
#include "ddc/memory_system.h"
#include "net/fabric.h"
#include "sim/cost_model.h"
#include "oltp/txn.h"
#include "sim/metrics.h"
#include "sim/tracer.h"
#include "teleport/pushdown.h"

namespace teleport {
namespace {

// --- Fabric per-kind breakdown ----------------------------------------------

TEST(FormatGoldenTest, FabricKindBreakdownEmpty) {
  net::Fabric fabric(sim::CostParams::Default());
  EXPECT_EQ(fabric.KindBreakdownToString(), "fabric{}");
}

TEST(FormatGoldenTest, FabricKindBreakdownSkipsZeroKindsAndKeepsEnumOrder) {
  net::Fabric fabric(sim::CostParams::Default());
  // Drive known traffic through the public send APIs; kinds with zero
  // messages must be omitted and the rest printed in enum order.
  fabric.SendToMemory(0, 64, net::MessageKind::kPushdownRequest);
  fabric.SendToCompute(0, 4096, net::MessageKind::kPageFaultReply);
  fabric.SendToCompute(0, 4096, net::MessageKind::kPageFaultReply);
  fabric.SendToMemory(0, 128, net::MessageKind::kSyncmem);
  EXPECT_EQ(fabric.KindBreakdownToString(),
            "fabric{PushdownRequest=1/64B PageFaultReply=2/8192B "
            "Syncmem=1/128B}");
}

TEST(FormatGoldenTest, FabricKindBreakdownResetsClean) {
  net::Fabric fabric(sim::CostParams::Default());
  fabric.SendToMemory(0, 64, net::MessageKind::kHeartbeat);
  fabric.Reset();
  EXPECT_EQ(fabric.KindBreakdownToString(), "fabric{}");
}

// --- Fabric queue breakdown (PR9 contended backends) -------------------------

TEST(FormatGoldenTest, FabricQueueBreakdownEmptyAndIdeal) {
  sim::CostParams p;
  p.net_latency_ns = 1000;
  p.net_bytes_per_ns = 1.0;
  net::Fabric fabric(p);
  EXPECT_EQ(fabric.QueueBreakdownToString(), "fabricq{}");
  // kIdeal never touches the queue machinery, no matter the traffic.
  fabric.SendToMemory(0, 4096, net::MessageKind::kPageFaultRequest);
  EXPECT_EQ(fabric.QueueBreakdownToString(), "fabricq{}");
}

TEST(FormatGoldenTest, FabricQueueBreakdownQueuedShape) {
  sim::CostParams p;
  p.net_latency_ns = 1000;
  p.net_bytes_per_ns = 1.0;
  net::Fabric fabric(p);
  fabric.set_backend(net::Backend::kQueuedRdma);
  // First send posts a doorbell and sails through (wait 0, depth 1); the
  // second coalesces onto it and waits out the first's 500 ns of link
  // service starting from t=100 (wait 650, depth 2). Kinds print in enum
  // order; zero-wait kinds still show their peak depth.
  fabric.SendToMemory(net::Link{}, 0, 500, net::MessageKind::kPageFaultRequest);
  fabric.SendToMemory(net::Link{}, 100, 500, net::MessageKind::kPageReturn);
  EXPECT_EQ(fabric.QueueBreakdownToString(),
            "fabricq{PageFaultRequest=0/0ns/peak1 PageReturn=1/650ns/peak2 "
            "doorbells=1+1c}");
  fabric.Reset();
  EXPECT_EQ(fabric.QueueBreakdownToString(), "fabricq{}");
}

TEST(FormatGoldenTest, FabricQueueBreakdownSmartNicShape) {
  sim::CostParams p;
  p.net_latency_ns = 1000;
  p.net_bytes_per_ns = 1.0;
  net::Fabric fabric(p);
  fabric.set_backend(net::Backend::kSmartNic);
  // A two-segment gather rides one doorbell; the coherence probe behind it
  // coalesces, queues behind the gather's 500 ns of link service, and is
  // NIC-offloaded.
  fabric.SendGatherToMemory(net::Link{}, 0, {64, 436},
                            net::MessageKind::kSyncmem);
  fabric.SendToMemory(net::Link{}, 0, 64, net::MessageKind::kCoherenceRequest);
  EXPECT_EQ(fabric.QueueBreakdownToString(),
            "fabricq{CoherenceRequest=1/750ns/peak2 Syncmem=0/0ns/peak1 "
            "doorbells=1+1c sg=1/2seg offloads=1}");
}

// --- Fabric backend names (TELEPORT_FABRIC_BACKEND vocabulary) ---------------

TEST(FormatGoldenTest, FabricBackendNames) {
  EXPECT_EQ(net::BackendToString(net::Backend::kIdeal), "ideal");
  EXPECT_EQ(net::BackendToString(net::Backend::kQueuedRdma), "queued_rdma");
  EXPECT_EQ(net::BackendToString(net::Backend::kSmartNic), "smartnic");
}

// --- sim::Metrics dump -------------------------------------------------------

TEST(FormatGoldenTest, MetricsToStringFullDump) {
  sim::Metrics m;
  m.cache_hits = 101;
  m.cache_misses = 7;
  m.cache_evictions = 5;
  m.dirty_writebacks = 3;
  m.net_messages = 40;
  m.net_bytes = 16384;
  m.bytes_from_memory_pool = 12288;
  m.bytes_to_memory_pool = 4096;
  m.memory_pool_hits = 6;
  m.memory_pool_faults = 1;
  m.storage_reads = 2;
  m.storage_writes = 1;
  m.coherence_messages = 9;
  m.coherence_invalidations = 4;
  m.coherence_downgrades = 2;
  m.coherence_page_returns = 3;
  m.pushdown_calls = 2;
  m.syncmem_pages = 8;
  m.fault_events = 11;
  m.retries = 5;
  m.fallbacks = 1;
  m.lost_pool_writes = 13;
  m.recovered_pool_writes = 12;
  m.journal_appends = 23;
  m.journal_flushes = 3;
  m.fenced_rpcs = 2;
  m.dedup_hits = 1;
  m.cpu_ops = 90210;
  EXPECT_EQ(m.ToString(),
            "cache: hits=101 misses=7 evictions=5 writebacks=3\n"
            "net: messages=40 bytes=16384 from_mem=12288 to_mem=4096\n"
            "memory pool: hits=6 faults=1\n"
            "storage: reads=2 writes=1\n"
            "coherence: messages=9 invalidations=4 downgrades=2 "
            "page_returns=3\n"
            "teleport: pushdowns=2 syncmem_pages=8\n"
            "resilience: fault_events=11 retries=5 fallbacks=1 "
            "lost_pool_writes=13\n"
            "recovery: recovered_pool_writes=12 journal_appends=23 "
            "journal_flushes=3 fenced_rpcs=2 dedup_hits=1\n"
            "cpu: ops=90210");
}

// The txn group only exists when the OLTP engine ran: a dump with any
// nonzero txn counter gains exactly one line between recovery and cpu,
// and an all-zero txn group is elided so every pre-OLTP golden (this
// file's MetricsToStringFullDump included) stays byte-identical.
TEST(FormatGoldenTest, MetricsTxnGroupLineAndElision) {
  sim::Metrics m;
  const std::string before = m.ToString();
  EXPECT_EQ(before.find("txn:"), std::string::npos)
      << "all-zero txn group must be elided";

  m.txn_commits = 40;
  m.txn_aborts = 6;
  m.txn_retries = 6;
  m.txn_reads_validated = 120;
  m.txn_undo_writes = 9;
  m.btree_splits = 3;
  m.btree_merges = 1;
  // The group slots in between the recovery and cpu lines.
  EXPECT_NE(m.ToString().find(
                "dedup_hits=0\n"
                "txn: commits=40 aborts=6 retries=6 reads_validated=120 "
                "undo_writes=9 node_splits=3 node_merges=1\n"
                "cpu: ops=0"),
            std::string::npos)
      << m.ToString();
  // And it is the only difference from the elided dump.
  sim::Metrics zeroed = m;
  zeroed.txn_commits = zeroed.txn_aborts = zeroed.txn_retries = 0;
  zeroed.txn_reads_validated = zeroed.txn_undo_writes = 0;
  zeroed.btree_splits = zeroed.btree_merges = 0;
  EXPECT_EQ(zeroed.ToString(), before);

  // Any single nonzero counter resurrects the whole group (labels at zero
  // still print, so dashboard regexes never see a partial line).
  sim::Metrics one;
  one.btree_merges = 2;
  EXPECT_NE(one.ToString().find(
                "txn: commits=0 aborts=0 retries=0 reads_validated=0 "
                "undo_writes=0 node_splits=0 node_merges=2"),
            std::string::npos)
      << one.ToString();
}

// Like txn, the netq group only exists when a contended fabric backend
// (non-kIdeal) ran: the line slots in between net and memory pool, and the
// all-zero group is elided so every kIdeal golden — MetricsToStringFullDump
// included — stays byte-identical.
TEST(FormatGoldenTest, MetricsNetqGroupLineAndElision) {
  sim::Metrics m;
  const std::string before = m.ToString();
  EXPECT_EQ(before.find("netq:"), std::string::npos)
      << "all-zero netq group must be elided";

  m.netq_queued_sends = 12;
  m.netq_queue_wait_ns = 34567;
  m.netq_doorbells = 9;
  m.netq_doorbells_coalesced = 21;
  m.netq_sg_segments = 6;
  m.netq_smartnic_offloads = 4;
  EXPECT_NE(m.ToString().find(
                "net: messages=0 bytes=0 from_mem=0 to_mem=0\n"
                "netq: queued_sends=12 queue_wait_ns=34567 doorbells=9 "
                "doorbells_coalesced=21 sg_segments=6 smartnic_offloads=4\n"
                "memory pool: hits=0 faults=0"),
            std::string::npos)
      << m.ToString();
  // Eliding the group is the only difference from the zero dump.
  sim::Metrics zeroed;
  EXPECT_EQ(zeroed.ToString(), before);

  // Any single nonzero counter resurrects the whole line.
  sim::Metrics one;
  one.netq_doorbells = 1;
  EXPECT_NE(one.ToString().find(
                "netq: queued_sends=0 queue_wait_ns=0 doorbells=1 "
                "doorbells_coalesced=0 sg_segments=0 smartnic_offloads=0"),
            std::string::npos)
      << one.ToString();
}

// The par group only exists when a caller flushed Interleaver host-dispatch
// counters (Interleaver::FlushParCounters): the line lands after cpu, and
// the all-zero group is elided so every serial golden —
// MetricsToStringFullDump included — stays byte-identical at any
// TELEPORT_HOST_THREADS value.
TEST(FormatGoldenTest, MetricsParGroupLineAndElision) {
  sim::Metrics m;
  const std::string before = m.ToString();
  EXPECT_EQ(before.find("par:"), std::string::npos)
      << "all-zero par group must be elided";

  m.par_batches = 5120;
  m.par_parallel_steps = 4096;
  m.par_lookahead_stalls = 88;
  m.par_handoff_waits = 9216;
  m.par_batched_quanta = 700;
  EXPECT_NE(m.ToString().find(
                "cpu: ops=0\n"
                "par: batches=5120 parallel_steps=4096 lookahead_stalls=88 "
                "handoff_waits=9216 batched_quanta=700"),
            std::string::npos)
      << m.ToString();
  // Eliding the group is the only difference from the zero dump.
  sim::Metrics zeroed;
  EXPECT_EQ(zeroed.ToString(), before);

  // Any single nonzero counter resurrects the whole line.
  sim::Metrics one;
  one.par_batched_quanta = 3;
  EXPECT_NE(one.ToString().find(
                "par: batches=0 parallel_steps=0 lookahead_stalls=0 "
                "handoff_waits=0 batched_quanta=3"),
            std::string::npos)
      << one.ToString();
}

// The resilience line is what the chaos dashboards grep for; lock it in
// the all-zero (fault-free) shape too.
TEST(FormatGoldenTest, MetricsResilienceLineFaultFree) {
  const sim::Metrics m;
  const std::string s = m.ToString();
  EXPECT_NE(s.find("resilience: fault_events=0 retries=0 fallbacks=0 "
                   "lost_pool_writes=0\n"),
            std::string::npos)
      << s;
  EXPECT_NE(s.find("recovery: recovered_pool_writes=0 journal_appends=0 "
                   "journal_flushes=0 fenced_rpcs=0 dedup_hits=0\n"),
            std::string::npos)
      << s;
}

// --- Pushdown breakdown ------------------------------------------------------

TEST(FormatGoldenTest, PushdownBreakdownToString) {
  tp::PushdownBreakdown bd;
  EXPECT_EQ(bd.ToString(),
            "pre_sync=0ms request=0ms queue=0ms setup=0ms exec=0ms "
            "online_sync=0ms response=0ms post_sync=0ms retry=0ms");
  bd.pre_sync_ns = 1 * kMillisecond;
  bd.function_exec_ns = 2500 * kMicrosecond;
  bd.retry_ns = 500 * kMicrosecond;
  EXPECT_EQ(bd.ToString(),
            "pre_sync=1ms request=0ms queue=0ms setup=0ms exec=2.5ms "
            "online_sync=0ms response=0ms post_sync=0ms retry=0.5ms");
}

// --- Chrome trace JSON shape (loaded by chrome://tracing / Perfetto) --------

TEST(FormatGoldenTest, TracerChromeJsonEmpty) {
  sim::Tracer t;
  EXPECT_EQ(
      t.ToChromeJson(),
      "{\"displayTimeUnit\":\"ns\",\"traceEvents\":[\n"
      "{\"ph\":\"M\",\"pid\":1,\"tid\":0,\"name\":\"thread_name\","
      "\"args\":{\"name\":\"compute\"}},\n"
      "{\"ph\":\"M\",\"pid\":1,\"tid\":1,\"name\":\"thread_name\","
      "\"args\":{\"name\":\"memory-pool\"}},\n"
      "{\"ph\":\"M\",\"pid\":1,\"tid\":2,\"name\":\"thread_name\","
      "\"args\":{\"name\":\"fabric\"}},\n"
      "{\"ph\":\"M\",\"pid\":1,\"tid\":3,\"name\":\"thread_name\","
      "\"args\":{\"name\":\"coherence\"}}\n"
      "]}\n");
}

TEST(FormatGoldenTest, TracerChromeJsonSpanAndInstant) {
  sim::Tracer t;
  t.Span("pushdown", "call", 1234567, 8901, sim::kTrackCompute, "\"call\":0");
  t.Instant("coherence", "Invalidate", 2000, sim::kTrackCoherence,
            "\"page\":7");
  const std::string json = t.ToChromeJson();
  // Event lines are byte-locked: integer-math microsecond rendering, span
  // dur, instant scope marker, args passthrough.
  EXPECT_NE(json.find("{\"ph\":\"X\",\"pid\":1,\"tid\":0,\"ts\":1234.567,"
                      "\"dur\":8.901,\"cat\":\"pushdown\",\"name\":\"call\","
                      "\"args\":{\"call\":0}}"),
            std::string::npos)
      << json;
  EXPECT_NE(json.find("{\"ph\":\"i\",\"pid\":1,\"tid\":3,\"ts\":2.000,"
                      "\"s\":\"t\",\"cat\":\"coherence\","
                      "\"name\":\"Invalidate\",\"args\":{\"page\":7}}"),
            std::string::npos)
      << json;
}

// --- Per-phase rollup (Fig 19/20-style attribution tables) ------------------

TEST(FormatGoldenTest, TracerRollupFormat) {
  sim::Tracer t;
  t.Span("pushdown", "call", 0, 100, sim::kTrackCompute);
  t.Span("pushdown", "call", 100, 100, sim::kTrackCompute);
  t.Span("db", "Scan", 0, 8, sim::kTrackCompute);
  // Keys sorted, one line each, histogram summary after ": ". All-equal
  // span durations report exact percentiles (the PR4 histogram fix).
  EXPECT_EQ(t.RollupToString(),
            "db/Scan: count=1 mean=8 p50=8 p99=8 max=8\n"
            "pushdown/call: count=2 mean=100 p50=100 p99=100 max=100");
  EXPECT_EQ(sim::Tracer().RollupToString(), "");
}

// --- Bench JSONL records (concatenated into BENCH_PR5.json by CI) -----------

TEST(FormatGoldenTest, BenchRecordJsonLine) {
  bench::BenchRecord r;
  r.figure = "fig20";
  r.workload = "on_demand";
  r.platform = "TELEPORT";
  r.virtual_ns = 8333226;
  r.wall_ns = 41250;
  r.remote_memory_bytes = 100663296;
  r.trace = "traces/fig20_on_demand.trace.json";
  EXPECT_EQ(bench::BenchRecordToJson(r),
            "{\"figure\":\"fig20\",\"workload\":\"on_demand\","
            "\"platform\":\"TELEPORT\",\"virtual_ns\":8333226,"
            "\"wall_ns\":41250,"
            "\"remote_memory_bytes\":100663296,"
            "\"trace\":\"traces/fig20_on_demand.trace.json\"}");
  // Quotes and backslashes in fields are escaped, not framing-breaking.
  bench::BenchRecord esc;
  esc.figure = "f\"1\\2";
  EXPECT_EQ(bench::BenchRecordToJson(esc),
            "{\"figure\":\"f\\\"1\\\\2\",\"workload\":\"\",\"platform\":\"\","
            "\"virtual_ns\":0,\"wall_ns\":0,\"remote_memory_bytes\":0,"
            "\"trace\":\"\"}");
}

// --- Coherence-event names (consumed by trace dumps / replay tooling) -------

TEST(FormatGoldenTest, CoherenceEventKindNames) {
  using K = ddc::CoherenceEvent::Kind;
  EXPECT_EQ(ddc::CoherenceEventKindToString(K::kSessionBegin), "SessionBegin");
  EXPECT_EQ(ddc::CoherenceEventKindToString(K::kSessionEnd), "SessionEnd");
  EXPECT_EQ(ddc::CoherenceEventKindToString(K::kComputeAccess),
            "ComputeAccess");
  EXPECT_EQ(ddc::CoherenceEventKindToString(K::kMemoryAccess), "MemoryAccess");
  EXPECT_EQ(ddc::CoherenceEventKindToString(K::kComputeEvict), "ComputeEvict");
  EXPECT_EQ(ddc::CoherenceEventKindToString(K::kPrefetchFill), "PrefetchFill");
  EXPECT_EQ(ddc::CoherenceEventKindToString(K::kSyncmemPage), "SyncmemPage");
  EXPECT_EQ(ddc::CoherenceEventKindToString(K::kFlushPage), "FlushPage");
  EXPECT_EQ(ddc::CoherenceEventKindToString(K::kRefetchPage), "RefetchPage");
  EXPECT_EQ(ddc::CoherenceEventKindToString(K::kPoolRestart), "PoolRestart");
  EXPECT_EQ(ddc::CoherenceEventKindToString(K::kPoolRecover), "PoolRecover");
  EXPECT_EQ(ddc::CoherenceEventKindToString(K::kJournalCommit),
            "JournalCommit");
  EXPECT_EQ(ddc::CoherenceEventKindToString(K::kJournalTruncate),
            "JournalTruncate");
  EXPECT_EQ(ddc::CoherenceEventKindToString(K::kPushdownAdmit),
            "PushdownAdmit");
  // PR8 transactional events (model-checker invariant #7 vocabulary).
  EXPECT_EQ(ddc::CoherenceEventKindToString(K::kTxnRead), "TxnRead");
  EXPECT_EQ(ddc::CoherenceEventKindToString(K::kTxnWrite), "TxnWrite");
  EXPECT_EQ(ddc::CoherenceEventKindToString(K::kTxnCommit), "TxnCommit");
  EXPECT_EQ(ddc::CoherenceEventKindToString(K::kTxnAbort), "TxnAbort");
  EXPECT_EQ(ddc::CoherenceEventKindToString(K::kTxnUndo), "TxnUndo");
}

// --- OLTP trace vocabulary (grepped out of Chrome traces by tooling) --------

TEST(FormatGoldenTest, OltpTraceEventNames) {
  EXPECT_STREQ(oltp::kTraceCategory, "oltp");
  EXPECT_STREQ(oltp::kTraceCommit, "TxnCommit");
  EXPECT_STREQ(oltp::kTraceAbort, "TxnAbort");
}

}  // namespace
}  // namespace teleport
