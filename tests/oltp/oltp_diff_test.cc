// OLTP leg of the differential harness (explore tier). Multi-session YCSB
// runs under 500+ distinct random schedules are compared against the
// sequential single-session-at-a-time golden: the determinism contract
// (pure per-txn op streams, commutative updates, unique insert keys, retry
// until commit) makes the final table content and the committed-(session,
// txn) digest schedule-independent, so ANY divergence is an engine bug.
// Every interleaved run also executes under the model checker — invariant
// #7 included — with zero tolerated violations. CI re-runs this suite with
// TELEPORT_SCALAR_DATAPATH=1, which MemorySystem picks up at construction.

#include <cstdint>
#include <memory>
#include <unordered_set>
#include <vector>

#include <gtest/gtest.h>

#include "ddc/memory_system.h"
#include "oltp/btree.h"
#include "oltp/txn.h"
#include "oltp/workload.h"
#include "sim/coop_task.h"
#include "sim/interleaver.h"
#include "teleport/model_checker.h"
#include "teleport/pushdown.h"

namespace teleport {
namespace {

using ddc::Pool;
using oltp::BTree;
using oltp::TxnManager;

constexpr uint64_t kPage = 4096;
constexpr int kSessions = 3;

/// {probe offload, key popularity, journal} sweep: 6 combos x 87 seeds =
/// 522 interleaved runs, of which at least 500 must be distinct schedules.
struct Combo {
  bool push_probes;
  bool zipfian;
  bool journal;
  const char* name;
};

constexpr Combo kCombos[] = {
    {false, false, false, "local/uniform"},
    {true, false, false, "push/uniform"},
    {false, true, false, "local/zipf"},
    {true, true, false, "push/zipf"},
    {false, false, true, "local/uniform/journal"},
    {true, true, true, "push/zipf/journal"},
};
constexpr uint64_t kSeedsPerCombo = 87;
constexpr size_t kDistinctFloor = 500;

oltp::YcsbConfig WorkloadFor(const Combo& c) {
  oltp::YcsbConfig cfg;
  cfg.sessions = kSessions;
  cfg.txns_per_session = 6;
  cfg.ops_per_txn = 3;
  cfg.keyspace = 64;
  cfg.zipfian = c.zipfian;
  cfg.scan_length = 4;
  cfg.seed = 29;  // workload seed is fixed; only the schedule seed sweeps
  return cfg;
}

struct Deployment {
  std::unique_ptr<ddc::MemorySystem> ms;
  std::unique_ptr<tp::PushdownRuntime> runtime;
  std::unique_ptr<ddc::ExecutionContext> ctx;
  std::unique_ptr<BTree> tree;
  std::unique_ptr<TxnManager> mgr;
};

Deployment Deploy(const Combo& c) {
  Deployment d;
  ddc::DdcConfig cfg;
  cfg.platform = ddc::Platform::kBaseDdc;
  cfg.compute_cache_bytes = 32 * kPage;  // small: descents evict and fault
  cfg.memory_pool_bytes = 4096 * kPage;
  d.ms = std::make_unique<ddc::MemorySystem>(cfg, sim::CostParams::Default(),
                                             32 << 20);
  d.ms->set_journal_enabled(c.journal);
  d.runtime = std::make_unique<tp::PushdownRuntime>(d.ms.get());
  d.ctx = d.ms->CreateContext(Pool::kCompute);
  oltp::BTreeOptions opts;
  opts.arena_pages = 256;
  opts.max_leaf_entries = 8;  // small nodes: commits race with splits
  opts.max_inner_entries = 8;
  opts.push_probes = c.push_probes;
  opts.runtime = d.runtime.get();
  d.tree = std::make_unique<BTree>(d.ms.get(), *d.ctx, opts);
  oltp::PreloadTable(*d.ctx, *d.tree, WorkloadFor(c).keyspace);
  d.ms->SeedData();
  d.mgr = std::make_unique<TxnManager>(d.ms.get(), d.tree.get());
  return d;
}

struct RunDigest {
  uint64_t content = 0;
  uint64_t commits = 0;
  uint64_t gave_up = 0;
};

/// The golden: sessions run to completion one after another — no
/// interleaving, so no aborts and no schedule dependence at all.
RunDigest RunSequentialGolden(const Combo& c) {
  Deployment d = Deploy(c);
  const oltp::YcsbConfig cfg = WorkloadFor(c);
  RunDigest out;
  for (int s = 0; s < kSessions; ++s) {
    const oltp::YcsbResult res = RunYcsbSession(*d.ctx, *d.mgr, cfg, s);
    EXPECT_EQ(res.aborted, 0u) << "sequential sessions cannot conflict";
    out.commits ^= res.commit_digest;
  }
  out.content = d.tree->ContentDigest(*d.ctx);
  return out;
}

/// One interleaved run under RandomSchedule(seed); fills `trace` with the
/// recorded schedule and returns the digests plus the checker's verdict.
RunDigest RunInterleaved(const Combo& c, uint64_t seed,
                         std::vector<uint32_t>* trace,
                         uint64_t* violations) {
  Deployment d = Deploy(c);
  tp::ModelChecker checker(d.ms.get(), tp::ModelChecker::OnViolation::kRecord);
  const oltp::YcsbConfig cfg = WorkloadFor(c);
  std::vector<std::unique_ptr<ddc::ExecutionContext>> ctxs;
  std::vector<oltp::YcsbResult> results(kSessions);
  {
    std::vector<std::unique_ptr<sim::CoopTask>> tasks;
    sim::Interleaver il;
    for (int s = 0; s < kSessions; ++s) {
      ctxs.push_back(d.ms->CreateContext(Pool::kCompute, 0, s));
      ddc::ExecutionContext* ctx = ctxs.back().get();
      TxnManager* mgr = d.mgr.get();
      tasks.push_back(std::make_unique<sim::CoopTask>(
          std::vector<ddc::ExecutionContext*>{ctx},
          [ctx, mgr, cfg, &results, s] {
            results[static_cast<size_t>(s)] = RunYcsbSession(*ctx, *mgr, cfg, s);
          },
          /*quantum=*/1));
      il.Add(tasks.back().get());
    }
    sim::RandomSchedule schedule(seed);
    il.set_schedule(&schedule);
    il.set_record_trace(true);
    il.Run();
    *trace = il.trace();
  }
  RunDigest out;
  for (const oltp::YcsbResult& res : results) {
    out.commits ^= res.commit_digest;
    out.gave_up += res.gave_up;
  }
  out.content = d.tree->ContentDigest(*d.ctx);
  *violations = checker.Finish();
  return out;
}

/// FNV-1a over the schedule trace: cheap fingerprint for distinctness.
uint64_t TraceSignature(const std::vector<uint32_t>& trace) {
  uint64_t h = 1469598103934665603ULL;
  for (const uint32_t step : trace) {
    h = (h ^ step) * 1099511628211ULL;
  }
  return h;
}

TEST(OltpDifferentialTest, InterleavedRunsMatchSequentialGolden) {
  std::unordered_set<uint64_t> signatures;
  uint64_t divergences = 0;
  uint64_t total_violations = 0;
  uint64_t combo_idx = 0;
  for (const Combo& combo : kCombos) {
    const RunDigest golden = RunSequentialGolden(combo);
    // Disjoint seed ranges per combo: combos that do not perturb timing
    // (e.g. journal on/off) would otherwise replay byte-identical schedules
    // and collapse the distinct-interleaving count.
    const uint64_t base = 1000 * combo_idx++;
    for (uint64_t s = 1; s <= kSeedsPerCombo; ++s) {
      const uint64_t seed = base + s;
      std::vector<uint32_t> trace;
      uint64_t violations = 0;
      const RunDigest run = RunInterleaved(combo, seed, &trace, &violations);
      signatures.insert(TraceSignature(trace));
      total_violations += violations;
      EXPECT_EQ(run.gave_up, 0u) << combo.name << " seed " << seed;
      if (run.content != golden.content || run.commits != golden.commits) {
        ++divergences;
        ADD_FAILURE() << "divergence under " << combo.name << " seed " << seed
                      << ": content " << run.content << " vs golden "
                      << golden.content << ", commits " << run.commits
                      << " vs " << golden.commits << "\nreplay trace: "
                      << sim::TraceToString(trace);
      }
      EXPECT_EQ(violations, 0u)
          << combo.name << " seed " << seed << ": invariant violation under "
          << "schedule " << sim::TraceToString(trace);
    }
  }
  EXPECT_EQ(divergences, 0u);
  EXPECT_EQ(total_violations, 0u);
  EXPECT_GE(signatures.size(), kDistinctFloor)
      << "schedule sweep collapsed: not enough distinct interleavings";
}

}  // namespace
}  // namespace teleport
