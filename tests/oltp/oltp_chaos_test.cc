// OLTP chaos soak: the multi-session YCSB table must end bit-identical
// across random schedules, lossy-fabric fault seeds, and journal on/off —
// and with the journal on, pool crash-restarts in the middle of the run
// must lose zero acknowledged writes while the engine keeps committing.
// Every run executes under the model checker (invariants #1-#7).

#include <cstdint>
#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "ddc/memory_system.h"
#include "net/faults.h"
#include "oltp/btree.h"
#include "oltp/txn.h"
#include "oltp/workload.h"
#include "sim/coop_task.h"
#include "sim/interleaver.h"
#include "teleport/model_checker.h"
#include "teleport/pushdown.h"

namespace teleport {
namespace {

using ddc::Pool;
using oltp::BTree;
using oltp::Txn;
using oltp::TxnManager;

constexpr uint64_t kPage = 4096;
constexpr int kSessions = 4;
constexpr uint64_t kSeeds[] = {1, 2, 3, 5, 8, 13, 21, 34, 55};

oltp::YcsbConfig Workload() {
  oltp::YcsbConfig cfg;
  cfg.sessions = kSessions;
  cfg.txns_per_session = 8;
  cfg.ops_per_txn = 3;
  cfg.keyspace = 96;
  cfg.zipfian = true;  // hotspot contention: aborts and retries guaranteed
  cfg.scan_length = 4;
  cfg.seed = 17;
  return cfg;
}

net::FaultSpec LossySpec() {
  net::FaultSpec spec;
  spec.drop_p = 0.10;
  spec.delay_p = 0.10;
  spec.delay_ns = 3 * kMicrosecond;
  spec.dup_p = 0.05;
  return spec;
}

struct Deployment {
  std::unique_ptr<ddc::MemorySystem> ms;
  std::unique_ptr<tp::PushdownRuntime> runtime;
  std::unique_ptr<ddc::ExecutionContext> ctx;
  std::unique_ptr<BTree> tree;
  std::unique_ptr<TxnManager> mgr;
};

/// Builds one deployment. When `checker` is non-null, the model checker is
/// attached BEFORE the tree preload, so it witnesses every journal commit a
/// later crash-restart will replay (attaching after preload would make the
/// replays look like unacknowledged re-materializations).
Deployment Deploy(bool journal,
                  std::unique_ptr<tp::ModelChecker>* checker = nullptr) {
  Deployment d;
  ddc::DdcConfig cfg;
  cfg.platform = ddc::Platform::kBaseDdc;
  cfg.compute_cache_bytes = 16 * kPage;  // tiny cache: constant writebacks,
  cfg.memory_pool_bytes = 4096 * kPage;  // so crashes have journal work
  d.ms = std::make_unique<ddc::MemorySystem>(cfg, sim::CostParams::Default(),
                                             32 << 20);
  d.ms->set_journal_enabled(journal);
  if (checker != nullptr) {
    *checker = std::make_unique<tp::ModelChecker>(
        d.ms.get(), tp::ModelChecker::OnViolation::kRecord);
  }
  d.runtime = std::make_unique<tp::PushdownRuntime>(d.ms.get());
  d.ctx = d.ms->CreateContext(Pool::kCompute);
  oltp::BTreeOptions opts;
  opts.arena_pages = 256;
  opts.max_leaf_entries = 8;
  opts.max_inner_entries = 8;
  opts.push_probes = true;  // faulted probes must degrade to local cleanly
  opts.runtime = d.runtime.get();
  d.tree = std::make_unique<BTree>(d.ms.get(), *d.ctx, opts);
  oltp::PreloadTable(*d.ctx, *d.tree, Workload().keyspace);
  d.ms->SeedData();
  d.mgr = std::make_unique<TxnManager>(d.ms.get(), d.tree.get());
  return d;
}

struct Observed {
  uint64_t content = 0;
  uint64_t commits = 0;
  uint64_t aborted = 0;
  uint64_t lost = 0;
  uint64_t recovered = 0;
  int restarts = 0;
  uint64_t violations = 0;
};

Observed RunInterleaved(Deployment& d, tp::ModelChecker& checker,
                        uint64_t schedule_seed) {
  const oltp::YcsbConfig cfg = Workload();
  std::vector<std::unique_ptr<ddc::ExecutionContext>> ctxs;
  std::vector<oltp::YcsbResult> results(kSessions);
  {
    std::vector<std::unique_ptr<sim::CoopTask>> tasks;
    sim::Interleaver il;
    for (int s = 0; s < kSessions; ++s) {
      ctxs.push_back(d.ms->CreateContext(Pool::kCompute, 0, s));
      ddc::ExecutionContext* ctx = ctxs.back().get();
      TxnManager* mgr = d.mgr.get();
      tasks.push_back(std::make_unique<sim::CoopTask>(
          std::vector<ddc::ExecutionContext*>{ctx},
          [ctx, mgr, cfg, &results, s] {
            results[static_cast<size_t>(s)] = RunYcsbSession(*ctx, *mgr, cfg, s);
          },
          /*quantum=*/2));
      il.Add(tasks.back().get());
    }
    sim::RandomSchedule schedule(schedule_seed);
    il.set_schedule(&schedule);
    il.Run();
  }
  Observed o;
  for (const oltp::YcsbResult& res : results) {
    EXPECT_EQ(res.gave_up, 0u);
    o.commits ^= res.commit_digest;
    o.aborted += res.aborted;
  }
  o.content = d.tree->ContentDigest(*d.ctx);
  o.lost = d.ms->lost_pool_writes();
  o.recovered = d.ms->recovered_pool_writes();
  o.restarts = d.ms->pool_restarts_applied();
  o.violations = checker.Finish();
  return o;
}

TEST(OltpChaosTest, ContentBitIdenticalAcrossSchedulesFaultsAndJournal) {
  // The golden: sequential sessions, quiet fabric, journal off.
  uint64_t golden_content = 0;
  uint64_t golden_commits = 0;
  {
    Deployment d = Deploy(/*journal=*/false);
    const oltp::YcsbConfig cfg = Workload();
    for (int s = 0; s < kSessions; ++s) {
      const oltp::YcsbResult res = RunYcsbSession(*d.ctx, *d.mgr, cfg, s);
      ASSERT_EQ(res.aborted, 0u);
      golden_commits ^= res.commit_digest;
    }
    golden_content = d.tree->ContentDigest(*d.ctx);
  }

  uint64_t total_aborts = 0;
  for (const bool journal : {false, true}) {
    for (const bool faults : {false, true}) {
      for (const uint64_t seed : kSeeds) {
        std::unique_ptr<tp::ModelChecker> checker;
        Deployment d = Deploy(journal, &checker);
        net::FaultInjector inj(/*seed=*/seed);
        if (faults) {
          inj.SetSpecAll(LossySpec());
          d.ms->fabric().set_fault_injector(&inj);
          d.ms->set_retry_seed(0x01 + seed);
          d.runtime->set_retry_seed(0x02 + seed);
        }
        const Observed o = RunInterleaved(d, *checker, seed);
        EXPECT_EQ(o.content, golden_content)
            << "journal=" << journal << " faults=" << faults << " seed "
            << seed << ": final table diverged";
        EXPECT_EQ(o.commits, golden_commits)
            << "journal=" << journal << " faults=" << faults << " seed "
            << seed;
        EXPECT_EQ(o.violations, 0u)
            << "journal=" << journal << " faults=" << faults << " seed "
            << seed;
        total_aborts += o.aborted;
      }
    }
  }
  EXPECT_GT(total_aborts, 0u)
      << "the zipfian hotspot should force at least some OCC conflicts — "
         "an abort-free soak is not exercising the undo path";
}

TEST(OltpChaosTest, JournalOnCrashRecoveryLosesNoCommittedWrites) {
  for (const uint64_t seed : kSeeds) {
    std::unique_ptr<tp::ModelChecker> checker;
    Deployment d = Deploy(/*journal=*/true, &checker);
    net::FaultInjector inj(/*seed=*/seed);
    // Crash-restart windows spread across the run's whole virtual span so
    // at least one lands mid-workload regardless of schedule; the fabric
    // itself stays quiet (the crash, not message loss, is under test).
    inj.ScheduleCrashRestart(/*at=*/50 * kMicrosecond,
                             /*down_for=*/20 * kMicrosecond);
    inj.ScheduleCrashRestart(/*at=*/500 * kMicrosecond,
                             /*down_for=*/50 * kMicrosecond);
    inj.ScheduleCrashRestart(/*at=*/5 * kMillisecond,
                             /*down_for=*/200 * kMicrosecond);
    d.ms->fabric().set_fault_injector(&inj);
    d.ms->set_retry_seed(0xabc + seed);
    d.runtime->set_retry_seed(0xdef + seed);

    const Observed o = RunInterleaved(d, *checker, seed);
    EXPECT_GT(o.restarts, 0) << "seed " << seed
                             << ": no crash window landed mid-run";
    EXPECT_EQ(o.lost, 0u) << "seed " << seed
                          << ": journal-on recovery lost acknowledged writes";
    EXPECT_EQ(o.violations, 0u) << "seed " << seed;

    // The engine is still live after recovery: a fresh transaction commits
    // and the tree still audits clean.
    Txn t(d.mgr.get(), /*session=*/0);
    t.Update(*d.ctx, 1, 7);
    EXPECT_TRUE(t.Commit(*d.ctx)) << "seed " << seed;
    const BTree::Audit audit = d.tree->AuditStructure(*d.ctx);
    EXPECT_TRUE(audit.ok) << "seed " << seed << ": " << audit.error;
  }
}

}  // namespace
}  // namespace teleport
