// Tier-1 lock on the PR8 OLTP engine: OCC semantics (commit, abort,
// read-your-writes, read-only validation), the model checker's invariant #7
// end to end — including proof that BOTH planted protocol mutations
// (kSkipOccValidation, kSkipAbortUndo) are caught — pushdown-accelerated
// index probes through the kernel registry, and a multi-session
// interleaved smoke against the sequential golden.

#include <cstdint>
#include <memory>

#include <gtest/gtest.h>

#include "ddc/memory_system.h"
#include "oltp/btree.h"
#include "oltp/txn.h"
#include "oltp/workload.h"
#include "sim/coop_task.h"
#include "sim/interleaver.h"
#include "teleport/model_checker.h"
#include "teleport/pushdown.h"

namespace teleport {
namespace {

using ddc::Pool;
using ddc::ProtocolMutation;
using oltp::BTree;
using oltp::Mix64;
using oltp::Txn;
using oltp::TxnManager;

constexpr uint64_t kPage = 4096;
constexpr uint64_t kKeys = 16;

struct Rig {
  std::unique_ptr<ddc::MemorySystem> ms;
  std::unique_ptr<tp::PushdownRuntime> runtime;
  std::unique_ptr<ddc::ExecutionContext> ctx;
  std::unique_ptr<BTree> tree;
  std::unique_ptr<TxnManager> mgr;
};

Rig MakeRig(bool push_probes = false, uint64_t keys = kKeys) {
  Rig r;
  ddc::DdcConfig cfg;
  cfg.platform = ddc::Platform::kBaseDdc;
  cfg.compute_cache_bytes = 64 * kPage;
  cfg.memory_pool_bytes = 4096 * kPage;
  r.ms = std::make_unique<ddc::MemorySystem>(cfg, sim::CostParams::Default(),
                                             32 << 20);
  r.runtime = std::make_unique<tp::PushdownRuntime>(r.ms.get());
  r.ctx = r.ms->CreateContext(Pool::kCompute);
  oltp::BTreeOptions opts;
  opts.arena_pages = 512;
  opts.push_probes = push_probes;
  opts.runtime = r.runtime.get();
  r.tree = std::make_unique<BTree>(r.ms.get(), *r.ctx, opts);
  oltp::PreloadTable(*r.ctx, *r.tree, keys);
  r.ms->SeedData();
  r.mgr = std::make_unique<TxnManager>(r.ms.get(), r.tree.get());
  return r;
}

TEST(OltpTxnTest, CommitPublishesWritesAndVersions) {
  Rig r = MakeRig();
  tp::ModelChecker checker(r.ms.get(), tp::ModelChecker::OnViolation::kRecord);
  {
    Txn t(r.mgr.get(), /*session=*/0);
    const Txn::ReadResult rr = t.Read(*r.ctx, 3);
    EXPECT_TRUE(rr.found);
    EXPECT_EQ(rr.value, Mix64(3));
    EXPECT_EQ(rr.version, 0u);
    t.Update(*r.ctx, 3, 5);
    t.Put(100, 77);
    EXPECT_TRUE(t.Commit(*r.ctx));
  }
  {
    Txn t(r.mgr.get(), 0);
    const Txn::ReadResult a = t.Read(*r.ctx, 3);
    EXPECT_EQ(a.value, Mix64(3) + 5);
    EXPECT_EQ(a.version, 1u);
    const Txn::ReadResult b = t.Read(*r.ctx, 100);
    EXPECT_TRUE(b.found);
    EXPECT_EQ(b.value, 77u);
    EXPECT_EQ(b.version, 1u);
    EXPECT_TRUE(t.Commit(*r.ctx));
  }
  EXPECT_EQ(r.ctx->metrics().txn_commits, 2u);
  EXPECT_EQ(r.ctx->metrics().txn_aborts, 0u);
  EXPECT_EQ(r.mgr->commit_seq(), 2u);
  EXPECT_EQ(checker.Finish(), 0u);
}

TEST(OltpTxnTest, ReadYourOwnWrites) {
  Rig r = MakeRig();
  Txn t(r.mgr.get(), 0);
  t.Put(5, 42);
  EXPECT_EQ(t.Read(*r.ctx, 5).value, 42u);
  t.Update(*r.ctx, 5, 1);
  EXPECT_EQ(t.Read(*r.ctx, 5).value, 43u);
  EXPECT_TRUE(t.Commit(*r.ctx));
  Txn t2(r.mgr.get(), 0);
  EXPECT_EQ(t2.Read(*r.ctx, 5).value, 43u);
}

TEST(OltpTxnTest, StaleReadAbortsRollsBackAndRetryCommits) {
  Rig r = MakeRig();
  tp::ModelChecker checker(r.ms.get(), tp::ModelChecker::OnViolation::kRecord);
  const uint64_t preload = Mix64(1);

  Txn a(r.mgr.get(), /*session=*/0);
  a.Update(*r.ctx, 1, 10);  // reads version 0, buffers preload + 10

  Txn b(r.mgr.get(), /*session=*/1);
  b.Update(*r.ctx, 1, 100);
  EXPECT_TRUE(b.Commit(*r.ctx));  // key 1 now preload + 100, version 1

  EXPECT_FALSE(a.Commit(*r.ctx));  // a's read of version 0 is stale

  {
    Txn check(r.mgr.get(), 0);
    const Txn::ReadResult rr = check.Read(*r.ctx, 1);
    EXPECT_EQ(rr.value, preload + 100) << "abort must restore b's committed "
                                          "value, not leave a's provisional";
    EXPECT_EQ(rr.version, 1u);
  }
  Txn retry(r.mgr.get(), 0);
  retry.Update(*r.ctx, 1, 10);  // fresh read of version 1
  EXPECT_TRUE(retry.Commit(*r.ctx));
  {
    Txn check(r.mgr.get(), 0);
    const Txn::ReadResult rr = check.Read(*r.ctx, 1);
    EXPECT_EQ(rr.value, preload + 110);
    EXPECT_EQ(rr.version, 2u);
  }
  EXPECT_EQ(r.ctx->metrics().txn_aborts, 1u);
  EXPECT_EQ(r.ctx->metrics().txn_undo_writes, 1u);
  EXPECT_EQ(checker.Finish(), 0u);
}

TEST(OltpTxnTest, ReadOnlyTransactionStillValidates) {
  Rig r = MakeRig();
  Txn a(r.mgr.get(), 0);
  (void)a.Read(*r.ctx, 2);
  Txn b(r.mgr.get(), 1);
  b.Update(*r.ctx, 2, 9);
  EXPECT_TRUE(b.Commit(*r.ctx));
  EXPECT_FALSE(a.Commit(*r.ctx)) << "read-only txn with a stale read must "
                                    "abort for serializability";
  EXPECT_EQ(r.ctx->metrics().txn_undo_writes, 0u);  // nothing installed
}

TEST(OltpTxnTest, AbsentReadConflictsWithInsert) {
  Rig r = MakeRig();
  Txn a(r.mgr.get(), 0);
  const Txn::ReadResult rr = a.Read(*r.ctx, 200);  // absent, version 0
  EXPECT_FALSE(rr.found);
  Txn b(r.mgr.get(), 1);
  b.Put(200, 1);
  EXPECT_TRUE(b.Commit(*r.ctx));
  a.Put(201, 2);
  EXPECT_FALSE(a.Commit(*r.ctx))
      << "an insert under a's absent read must fail a's validation";
}

TEST(OltpTxnTest, ScanReadsCommittedRecords) {
  Rig r = MakeRig();
  tp::ModelChecker checker(r.ms.get(), tp::ModelChecker::OnViolation::kRecord);
  Txn t(r.mgr.get(), 0);
  const Txn::ScanResult sr = t.Scan(*r.ctx, 0, 8);
  EXPECT_EQ(sr.records, 8u);
  EXPECT_NE(sr.digest, 0u);
  EXPECT_EQ(t.read_set_size(), 8u);
  EXPECT_TRUE(t.Commit(*r.ctx));
  EXPECT_EQ(checker.Finish(), 0u);
}

// --- The planted protocol mutations, provably caught by invariant #7 --------

TEST(OltpMutationTest, SkipOccValidationLosesUpdateAndIsCaught) {
  Rig r = MakeRig();
  r.ms->set_protocol_mutation(ProtocolMutation::kSkipOccValidation);
  tp::ModelChecker checker(r.ms.get(), tp::ModelChecker::OnViolation::kRecord);
  const uint64_t preload = Mix64(1);

  Txn a(r.mgr.get(), 0);
  a.Update(*r.ctx, 1, 10);
  Txn b(r.mgr.get(), 1);
  b.Update(*r.ctx, 1, 100);
  EXPECT_TRUE(b.Commit(*r.ctx));
  EXPECT_TRUE(a.Commit(*r.ctx))
      << "the mutation must let the stale commit through";

  // The classic lost update: a's value was computed from the pre-b read.
  Txn check(r.mgr.get(), 0);
  EXPECT_EQ(check.Read(*r.ctx, 1).value, preload + 10)
      << "b's committed update should have been clobbered (that's the bug)";
  EXPECT_GT(checker.Finish(), 0u)
      << "invariant #7b must flag the commit against a stale read";
}

TEST(OltpMutationTest, SkipAbortUndoCorruptsValueAndIsCaught) {
  Rig r = MakeRig();
  r.ms->set_protocol_mutation(ProtocolMutation::kSkipAbortUndo);
  tp::ModelChecker checker(r.ms.get(), tp::ModelChecker::OnViolation::kRecord);
  const uint64_t preload = Mix64(1);

  Txn a(r.mgr.get(), 0);
  a.Update(*r.ctx, 1, 10);
  Txn b(r.mgr.get(), 1);
  b.Update(*r.ctx, 1, 100);
  EXPECT_TRUE(b.Commit(*r.ctx));
  EXPECT_FALSE(a.Commit(*r.ctx)) << "validation still runs; only undo is "
                                    "skipped";

  // Version validation can never see this bug: the version word was
  // restored, only the value is the abandoned provisional.
  Txn check(r.mgr.get(), 0);
  const Txn::ReadResult rr = check.Read(*r.ctx, 1);
  EXPECT_EQ(rr.version, 1u);
  EXPECT_EQ(rr.value, preload + 10)
      << "the provisional value should have survived (that's the bug)";
  EXPECT_NE(rr.value, preload + 100);
  EXPECT_GT(checker.Finish(), 0u)
      << "invariant #7c must flag the undischarged undo obligation";
}

// --- Invariant #7 unit surface (hand-crafted event sequences) ---------------

TEST(OltpCheckerTest, FlagsDirtyReadVersion) {
  Rig r = MakeRig();
  tp::ModelChecker checker(r.ms.get(), tp::ModelChecker::OnViolation::kRecord);
  r.ms->NotifyTxnEvent(ddc::CoherenceEvent::Kind::kTxnRead, 3, 7, 0, 0);
  EXPECT_GT(checker.Finish(), 0u);
}

TEST(OltpCheckerTest, FlagsNonSuccessorInstall) {
  Rig r = MakeRig();
  tp::ModelChecker checker(r.ms.get(), tp::ModelChecker::OnViolation::kRecord);
  r.ms->NotifyTxnEvent(ddc::CoherenceEvent::Kind::kTxnWrite, 3, 5, 0, 0);
  EXPECT_GT(checker.Finish(), 0u);
}

TEST(OltpCheckerTest, FlagsNonMonotoneCommitSequence) {
  Rig r = MakeRig();
  tp::ModelChecker checker(r.ms.get(), tp::ModelChecker::OnViolation::kRecord);
  using K = ddc::CoherenceEvent::Kind;
  r.ms->NotifyTxnEvent(K::kTxnWrite, 3, 1, 0, 0);
  r.ms->NotifyTxnEvent(K::kTxnCommit, 0, 1, 0, 0);
  r.ms->NotifyTxnEvent(K::kTxnWrite, 4, 1, 1, 0);
  r.ms->NotifyTxnEvent(K::kTxnCommit, 0, 1, 1, 0);  // sequence reused
  EXPECT_EQ(checker.Finish(), 1u);
}

TEST(OltpCheckerTest, FlagsUnmatchedUndo) {
  Rig r = MakeRig();
  tp::ModelChecker checker(r.ms.get(), tp::ModelChecker::OnViolation::kRecord);
  r.ms->NotifyTxnEvent(ddc::CoherenceEvent::Kind::kTxnUndo, 3, 0, 0, 0);
  EXPECT_GT(checker.Finish(), 0u);
}

TEST(OltpCheckerTest, AcceptsCleanAbortUndoCycle) {
  Rig r = MakeRig();
  tp::ModelChecker checker(r.ms.get(), tp::ModelChecker::OnViolation::kRecord);
  using K = ddc::CoherenceEvent::Kind;
  r.ms->NotifyTxnEvent(K::kTxnRead, 3, 0, 0, 0);
  r.ms->NotifyTxnEvent(K::kTxnWrite, 3, 1, 0, 0);
  r.ms->NotifyTxnEvent(K::kTxnAbort, 0, 0, 0, 0);
  r.ms->NotifyTxnEvent(K::kTxnUndo, 3, 0, 0, 0);
  EXPECT_EQ(checker.Finish(), 0u);
}

// --- Pushdown probes ---------------------------------------------------------

TEST(OltpPushdownTest, KernelRegistryRoundTripAndCounts) {
  Rig r = MakeRig(/*push_probes=*/true);
  const int probe = r.runtime->RegisterKernel("ProbeLeaf");
  const int traverse = r.runtime->RegisterKernel("TraverseInner");
  EXPECT_NE(probe, traverse);
  EXPECT_EQ(r.runtime->RegisterKernel("ProbeLeaf"), probe)
      << "registration must be idempotent";
  EXPECT_EQ(r.runtime->kernel_name(probe), "ProbeLeaf");
  EXPECT_EQ(r.runtime->kernel_calls(probe), 0u);

  Txn t(r.mgr.get(), 0);
  (void)t.Read(*r.ctx, 3);
  (void)t.Scan(*r.ctx, 0, 4);
  EXPECT_TRUE(t.Commit(*r.ctx));
  EXPECT_GE(r.runtime->kernel_calls(probe), 1u);
  EXPECT_GE(r.runtime->kernel_calls(traverse), 1u);
}

TEST(OltpPushdownTest, PushedAndLocalProbesAgreeOnContent) {
  oltp::YcsbConfig cfg;
  cfg.txns_per_session = 8;
  cfg.ops_per_txn = 4;
  cfg.keyspace = kKeys;
  cfg.seed = 7;
  uint64_t digests[2];
  uint64_t commits[2];
  for (int push = 0; push < 2; ++push) {
    Rig r = MakeRig(push == 1);
    const oltp::YcsbResult res = RunYcsbSession(*r.ctx, *r.mgr, cfg, 0);
    digests[push] = r.tree->ContentDigest(*r.ctx);
    commits[push] = res.commit_digest;
    EXPECT_EQ(res.committed, 8u);
  }
  EXPECT_EQ(digests[0], digests[1])
      << "probe offload must never change bytes";
  EXPECT_EQ(commits[0], commits[1]);
}

// --- Multi-session interleaved smoke (the diff harness in miniature) --------

TEST(OltpInterleavedTest, RandomScheduleMatchesSequentialGolden) {
  oltp::YcsbConfig cfg;
  cfg.txns_per_session = 4;
  cfg.ops_per_txn = 3;
  cfg.keyspace = kKeys;
  cfg.seed = 11;
  constexpr int kSessions = 3;

  // Sequential golden: sessions one after another, no interleaving.
  uint64_t golden_content = 0;
  uint64_t golden_commits = 0;
  {
    Rig r = MakeRig();
    for (int s = 0; s < kSessions; ++s) {
      const oltp::YcsbResult res = RunYcsbSession(*r.ctx, *r.mgr, cfg, s);
      EXPECT_EQ(res.aborted, 0u) << "sequential sessions cannot conflict";
      golden_commits ^= res.commit_digest;
    }
    golden_content = r.tree->ContentDigest(*r.ctx);
  }

  for (uint64_t seed = 1; seed <= 3; ++seed) {
    Rig r = MakeRig();
    tp::ModelChecker checker(r.ms.get(),
                             tp::ModelChecker::OnViolation::kRecord);
    std::vector<std::unique_ptr<ddc::ExecutionContext>> ctxs;
    std::vector<oltp::YcsbResult> results(kSessions);
    {
      std::vector<std::unique_ptr<sim::CoopTask>> tasks;
      for (int s = 0; s < kSessions; ++s) {
        ctxs.push_back(r.ms->CreateContext(Pool::kCompute, 0, s));
      }
      sim::Interleaver il;
      for (int s = 0; s < kSessions; ++s) {
        ddc::ExecutionContext* ctx = ctxs[static_cast<size_t>(s)].get();
        auto* mgr = r.mgr.get();
        tasks.push_back(std::make_unique<sim::CoopTask>(
            std::vector<ddc::ExecutionContext*>{ctx},
            [ctx, mgr, &cfg, &results, s] {
              results[static_cast<size_t>(s)] =
                  RunYcsbSession(*ctx, *mgr, cfg, s);
            },
            /*quantum=*/4));
        il.Add(tasks.back().get());
      }
      sim::RandomSchedule schedule(seed);
      il.set_schedule(&schedule);
      il.Run();
    }
    uint64_t commits = 0;
    for (const oltp::YcsbResult& res : results) {
      EXPECT_EQ(res.gave_up, 0u);
      commits ^= res.commit_digest;
    }
    EXPECT_EQ(commits, golden_commits) << "seed " << seed;
    EXPECT_EQ(r.tree->ContentDigest(*r.ctx), golden_content)
        << "final table content diverged under seed " << seed;
    EXPECT_EQ(checker.Finish(), 0u) << "seed " << seed;
  }
}

}  // namespace
}  // namespace teleport
