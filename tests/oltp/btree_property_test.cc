// Satellite: B+-tree structural property test. Random insert/delete
// programs with tiny node capacities (so every batch crosses page
// boundaries through splits and merges) are replayed against a std::map
// oracle: after every batch the tree must audit clean — sorted keys,
// uniform leaf depth, fill-factor bounds, consistent leaf chain — and its
// in-order digest must equal the digest folded over the oracle. The whole
// program runs on both the extent fast path and the scalar datapath
// (TELEPORT_SCALAR_DATAPATH equivalent via set_scalar_datapath) and must
// be bit-identical between them, content *and* virtual time.

#include <cstdint>
#include <map>
#include <memory>
#include <utility>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "ddc/memory_system.h"
#include "oltp/btree.h"
#include "oltp/workload.h"

namespace teleport {
namespace {

using oltp::BTree;
using oltp::Mix64;
using oltp::RecordMeta;

constexpr uint64_t kPage = 4096;

struct Scale {
  uint64_t key_range;
  int batches;
  int ops_per_batch;
};

constexpr Scale kScales[] = {
    {64, 4, 48},    // small: shallow tree, heavy churn on few leaves
    {512, 6, 96},   // large: multi-level tree, splits and merges at depth
};

struct Outcome {
  uint64_t digest = 0;
  uint64_t records = 0;
  uint64_t splits = 0;
  uint64_t merges = 0;
  uint64_t height = 0;
  Nanos now = 0;
};

/// Digest of the oracle's content with the tree's own fold (in-order
/// Mix(key), Mix(value), Mix(meta) chain).
uint64_t OracleDigest(
    const std::map<uint64_t, std::pair<uint64_t, uint64_t>>& oracle) {
  uint64_t d = 0;
  for (const auto& [key, vm] : oracle) {
    d = Mix64(d ^ key);
    d = Mix64(d ^ vm.first);
    d = Mix64(d ^ vm.second);
  }
  return d;
}

void RunProgram(uint64_t seed, const Scale& scale, bool scalar,
                Outcome* out) {
  ddc::DdcConfig cfg;
  cfg.platform = ddc::Platform::kBaseDdc;
  cfg.compute_cache_bytes = 64 * kPage;
  cfg.memory_pool_bytes = 4096 * kPage;
  ddc::MemorySystem ms(cfg, sim::CostParams::Default(), 32 << 20);
  ms.set_scalar_datapath(scalar);
  auto ctx = ms.CreateContext(ddc::Pool::kCompute);

  oltp::BTreeOptions opts;
  opts.arena_pages = 768;
  opts.max_leaf_entries = 6;   // tiny caps force deep trees on small key
  opts.max_inner_entries = 5;  // sets: every batch splits and merges
  BTree tree(&ms, *ctx, opts);
  ms.SeedData();

  std::map<uint64_t, std::pair<uint64_t, uint64_t>> oracle;
  Rng rng(Mix64(seed) ^ 0xb7ee);

  for (int batch = 0; batch < scale.batches; ++batch) {
    for (int op = 0; op < scale.ops_per_batch; ++op) {
      const uint64_t key = rng.Next() % scale.key_range;
      if (rng.Next() % 10 < 6 || oracle.empty()) {
        const uint64_t value = rng.Next();
        const uint64_t meta = RecordMeta::Pack(rng.Next() % 16, true);
        const bool inserted = tree.Insert(*ctx, key, value, meta);
        EXPECT_EQ(inserted, oracle.find(key) == oracle.end())
            << "seed " << seed << " key " << key;
        oracle[key] = {value, meta};
      } else {
        const bool deleted = tree.Delete(*ctx, key);
        EXPECT_EQ(deleted, oracle.erase(key) == 1)
            << "seed " << seed << " key " << key;
      }
    }
    const BTree::Audit audit = tree.AuditStructure(*ctx);
    ASSERT_TRUE(audit.ok) << "seed " << seed << " batch " << batch << ": "
                          << audit.error;
    EXPECT_EQ(audit.records, oracle.size());
    EXPECT_EQ(audit.digest, OracleDigest(oracle))
        << "seed " << seed << " batch " << batch;
  }

  // Point lookups agree with the oracle (value word lives at slot + 8).
  for (int i = 0; i < 32; ++i) {
    const uint64_t key = rng.Next() % scale.key_range;
    const ddc::VAddr slot = tree.FindRecord(*ctx, key);
    const auto it = oracle.find(key);
    if (it == oracle.end()) {
      EXPECT_EQ(slot, 0u) << "seed " << seed << " key " << key;
    } else {
      ASSERT_NE(slot, 0u) << "seed " << seed << " key " << key;
      EXPECT_EQ(ctx->Load<uint64_t>(slot + 8), it->second.first);
      EXPECT_EQ(ctx->Load<uint64_t>(slot + 16), it->second.second);
    }
  }

  // Drain to empty (forces merges all the way back down), then regrow.
  while (!oracle.empty()) {
    const uint64_t key = oracle.begin()->first;
    EXPECT_TRUE(tree.Delete(*ctx, key));
    oracle.erase(key);
  }
  {
    const BTree::Audit audit = tree.AuditStructure(*ctx);
    ASSERT_TRUE(audit.ok) << "seed " << seed << " drained: " << audit.error;
    EXPECT_EQ(audit.records, 0u);
    EXPECT_EQ(tree.height(*ctx), 1u) << "empty tree must collapse to a "
                                        "single root leaf";
  }
  for (uint64_t key = 0; key < 40; ++key) {
    tree.Insert(*ctx, key, Mix64(key), RecordMeta::Pack(0, true));
    oracle[key] = {Mix64(key), RecordMeta::Pack(0, true)};
  }
  const BTree::Audit audit = tree.AuditStructure(*ctx);
  EXPECT_TRUE(audit.ok) << audit.error;
  EXPECT_EQ(audit.digest, OracleDigest(oracle));

  out->digest = audit.digest;
  out->records = audit.records;
  out->splits = tree.splits();
  out->merges = tree.merges();
  out->height = tree.height(*ctx);
  out->now = ctx->now();
}

TEST(BTreePropertyTest, RandomProgramsMatchOracleOnBothDatapaths) {
  for (uint64_t seed = 1; seed <= 9; ++seed) {
    for (const Scale& scale : kScales) {
      Outcome bulk;
      RunProgram(seed, scale, /*scalar=*/false, &bulk);
      EXPECT_GT(bulk.splits, 0u) << "caps this small must split";
      EXPECT_GT(bulk.merges, 0u) << "the drain phase must merge";
      EXPECT_GT(bulk.height, 1u) << "the program must have grown the tree";

      Outcome scalar;
      RunProgram(seed, scale, /*scalar=*/true, &scalar);
      EXPECT_EQ(bulk.digest, scalar.digest)
          << "seed " << seed << ": datapaths diverged on content";
      EXPECT_EQ(bulk.records, scalar.records);
      EXPECT_EQ(bulk.splits, scalar.splits);
      EXPECT_EQ(bulk.merges, scalar.merges);
      EXPECT_EQ(bulk.now, scalar.now)
          << "seed " << seed << ": scalar datapath must be virtual-time "
          << "bit-identical to the extent fast path";
    }
  }
}

/// Derived (page-sized) capacities: a few thousand records stay shallow,
/// and the audit digest still tracks the oracle.
TEST(BTreePropertyTest, PageSizedNodesStayShallow) {
  ddc::DdcConfig cfg;
  cfg.platform = ddc::Platform::kBaseDdc;
  cfg.compute_cache_bytes = 64 * kPage;
  cfg.memory_pool_bytes = 4096 * kPage;
  ddc::MemorySystem ms(cfg, sim::CostParams::Default(), 32 << 20);
  auto ctx = ms.CreateContext(ddc::Pool::kCompute);
  oltp::BTreeOptions opts;  // capacities derived from the page size
  opts.arena_pages = 256;
  BTree tree(&ms, *ctx, opts);
  ms.SeedData();
  EXPECT_GE(tree.leaf_capacity(), 100);

  std::map<uint64_t, std::pair<uint64_t, uint64_t>> oracle;
  for (uint64_t i = 0; i < 2000; ++i) {
    const uint64_t key = Mix64(i) % 100000;
    const uint64_t meta = RecordMeta::Pack(0, true);
    tree.Insert(*ctx, key, i, meta);
    oracle[key] = {i, meta};
  }
  const BTree::Audit audit = tree.AuditStructure(*ctx);
  ASSERT_TRUE(audit.ok) << audit.error;
  EXPECT_EQ(audit.records, oracle.size());
  EXPECT_EQ(audit.digest, OracleDigest(oracle));
  EXPECT_LE(tree.height(*ctx), 3u);
}

}  // namespace
}  // namespace teleport
