// PR9 satellite: the heartbeat liveness deadline is congestion-aware.
//
// The fabric-contention model makes queue wait real: a heartbeat probe sent
// into a saturated link sits behind megabytes of backlog before its 64
// bytes ever hit the wire. A fixed RTT deadline would fence that shard even
// though the pool is perfectly healthy — the §3.2 panic is for dead pools,
// not busy fabrics. CheckHeartbeat therefore budgets
// `heartbeat_deadline_ns + QueueBacklogNs(link, send time)`: observable
// queue residency is excused, and only delay beyond it panics.

#include <cstdint>

#include <gtest/gtest.h>

#include "net/fabric.h"
#include "net/faults.h"
#include "teleport/pushdown.h"

namespace teleport::tp {
namespace {

using ddc::DdcConfig;
using ddc::MemorySystem;
using ddc::Platform;
using ddc::Pool;

constexpr uint64_t kPage = 4096;

DdcConfig Config() {
  DdcConfig c;
  c.platform = Platform::kBaseDdc;
  c.compute_cache_bytes = 16 * kPage;
  c.memory_pool_bytes = 1024 * kPage;
  return c;
}

/// Queues `sends` x `bytes` on the compute->memory direction of `link` at
/// t=0, leaving the link with a multi-millisecond service backlog.
void Saturate(MemorySystem& ms, net::Link link, int sends, uint64_t bytes) {
  for (int i = 0; i < sends; ++i) {
    (void)ms.fabric().SendToMemory(link, 0, bytes);
  }
}

TEST(HeartbeatCongestionTest, SaturatedButHealthyShardIsNeverFenced) {
  // 80 MB of backlog at 7 B/ns is ~11.4 ms of queue wait — more than twice
  // the 5 ms deadline. The probe's RTT blows through the fixed budget, but
  // every nanosecond of it is visible backlog, so the shard stays healthy.
  MemorySystem ms(Config(), sim::CostParams::Default(), 32 << 20);
  ms.fabric().set_backend(net::Backend::kQueuedRdma);
  PushdownRuntime runtime(&ms);
  Saturate(ms, net::Link{0, 0}, /*sends=*/10, /*bytes=*/8 << 20);
  ASSERT_GT(ms.fabric().QueueBacklogNs(net::Link{0, 0}, 0),
            ms.params().heartbeat_deadline_ns);

  auto caller = ms.CreateContext(Pool::kCompute);
  EXPECT_TRUE(runtime.CheckHeartbeat(*caller).ok());
  EXPECT_FALSE(runtime.panicked());
  // The probe really did wait out the backlog — this is not a fast path.
  EXPECT_GT(caller->now(), ms.params().heartbeat_deadline_ns);
}

TEST(HeartbeatCongestionTest, SaturationExcuseSurvivesTheRetryPath) {
  // Same scenario with a (fault-free) injector attached, which routes the
  // probe through the retransmission machinery: the deadline must judge the
  // winning attempt's RTT against backlog at ITS send time, not wall time
  // since the first attempt.
  MemorySystem ms(Config(), sim::CostParams::Default(), 32 << 20);
  ms.fabric().set_backend(net::Backend::kQueuedRdma);
  net::FaultInjector inj(/*seed=*/5);
  ms.fabric().set_fault_injector(&inj);
  PushdownRuntime runtime(&ms);
  Saturate(ms, net::Link{0, 0}, /*sends=*/10, /*bytes=*/8 << 20);

  auto caller = ms.CreateContext(Pool::kCompute);
  EXPECT_TRUE(runtime.CheckHeartbeat(*caller).ok());
  EXPECT_FALSE(runtime.panicked());
}

TEST(HeartbeatCongestionTest, IdleProbeSitsWellInsideTheDeadline) {
  MemorySystem ms(Config(), sim::CostParams::Default(), 32 << 20);
  ms.fabric().set_backend(net::Backend::kQueuedRdma);
  PushdownRuntime runtime(&ms);
  auto caller = ms.CreateContext(Pool::kCompute);
  EXPECT_TRUE(runtime.CheckHeartbeat(*caller).ok());
  EXPECT_LT(caller->now(), ms.params().heartbeat_deadline_ns);
}

TEST(HeartbeatCongestionTest, DeadlineStillFencesWhenNoBacklogExplainsIt) {
  // Shrink the deadline below one idle RTT: with zero backlog to excuse the
  // delay, the probe must panic — the congestion allowance never turns the
  // deadline off.
  sim::CostParams p = sim::CostParams::Default();
  p.heartbeat_deadline_ns = 1;
  for (const net::Backend backend :
       {net::Backend::kIdeal, net::Backend::kQueuedRdma}) {
    MemorySystem ms(Config(), p, 32 << 20);
    ms.fabric().set_backend(backend);
    PushdownRuntime runtime(&ms);
    auto caller = ms.CreateContext(Pool::kCompute);
    EXPECT_TRUE(runtime.CheckHeartbeat(*caller).IsUnavailable())
        << net::BackendToString(backend);
    EXPECT_TRUE(runtime.panicked()) << net::BackendToString(backend);
  }
}

}  // namespace
}  // namespace teleport::tp
