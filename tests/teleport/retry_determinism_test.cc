// Property test for the §3.2 retry layer: with the same injector seed and
// fault schedule, a run is reproducible bit-for-bit — identical retry
// counts, identical completion times, identical results. A different seed
// perturbs timing but never correctness.

#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "net/faults.h"
#include "teleport/pushdown.h"
#include "teleport/retry.h"

namespace teleport::tp {
namespace {

using ddc::DdcConfig;
using ddc::ExecutionContext;
using ddc::MemorySystem;
using ddc::Platform;
using ddc::Pool;
using ddc::VAddr;

constexpr uint64_t kPage = 4096;

DdcConfig Config() {
  DdcConfig c;
  c.platform = Platform::kBaseDdc;
  c.compute_cache_bytes = 16 * kPage;
  c.memory_pool_bytes = 2048 * kPage;
  return c;
}

net::FaultSpec LossySpec() {
  net::FaultSpec spec;
  spec.drop_p = 0.25;
  spec.delay_p = 0.1;
  spec.delay_ns = 2 * kMicrosecond;
  return spec;
}

struct RunResult {
  int64_t sum = 0;
  Nanos elapsed = 0;
  uint64_t runtime_retries = 0;
  uint64_t ctx_retries = 0;
  Nanos retry_ns = 0;
};

/// A small pushdown workload under a lossy injector seeded with `seed`.
RunResult RunOnce(uint64_t seed) {
  MemorySystem ms(Config(), sim::CostParams::Default(), 32 << 20);
  net::FaultInjector inj(seed);
  inj.SetSpecAll(LossySpec());
  ms.fabric().set_fault_injector(&inj);
  ms.set_retry_seed(seed * 31 + 1);

  PushdownRuntime runtime(&ms);
  runtime.set_retry_seed(seed * 31 + 2);

  const VAddr a = ms.space().Alloc(256 * kPage, "d");
  ms.SeedData();
  auto caller = ms.CreateContext(Pool::kCompute);

  RunResult r;
  for (int call = 0; call < 4; ++call) {
    const Status st = runtime.Call(*caller, [&](ExecutionContext& mc) {
      int64_t local = 0;
      for (uint64_t p = 0; p < 256; ++p) {
        local += mc.Load<int64_t>(a + p * kPage);
        mc.Store<int64_t>(a + p * kPage, local + call);
      }
      r.sum += local;
      return Status::OK();
    });
    TELEPORT_CHECK(st.ok());
    r.retry_ns += runtime.last_breakdown().retry_ns;
  }
  r.elapsed = caller->now();
  r.runtime_retries = runtime.retry_events();
  r.ctx_retries = caller->metrics().retries;
  return r;
}

TEST(RetryDeterminismTest, SameSeedSameScheduleSameRun) {
  for (uint64_t seed : {1u, 7u, 42u}) {
    const RunResult a = RunOnce(seed);
    const RunResult b = RunOnce(seed);
    EXPECT_EQ(a.sum, b.sum) << "seed " << seed;
    EXPECT_EQ(a.elapsed, b.elapsed) << "seed " << seed;
    EXPECT_EQ(a.runtime_retries, b.runtime_retries) << "seed " << seed;
    EXPECT_EQ(a.ctx_retries, b.ctx_retries) << "seed " << seed;
    EXPECT_EQ(a.retry_ns, b.retry_ns) << "seed " << seed;
  }
}

TEST(RetryDeterminismTest, ResultsAreSeedIndependent) {
  const RunResult base = RunOnce(1);
  for (uint64_t seed = 2; seed <= 9; ++seed) {
    const RunResult r = RunOnce(seed);
    // Application output never depends on the fault schedule...
    EXPECT_EQ(r.sum, base.sum) << "seed " << seed;
    // ...while virtual time is allowed to (faults cost time).
    EXPECT_GT(r.elapsed, 0);
  }
}

TEST(RetryDeterminismTest, BackoffIsCappedJitteredAndDeterministic) {
  RetryPolicy policy;
  policy.base_backoff_ns = 10 * kMicrosecond;
  policy.max_backoff_ns = 100 * kMicrosecond;
  policy.multiplier = 2.0;
  policy.jitter_frac = 0.25;
  Rng a(99), b(99);
  for (int retry = 0; retry < 12; ++retry) {
    const Nanos wa = policy.BackoffFor(retry, a);
    const Nanos wb = policy.BackoffFor(retry, b);
    EXPECT_EQ(wa, wb);
    EXPECT_GE(wa, 0);
    // Cap plus max jitter bounds every wait.
    EXPECT_LE(wa, static_cast<Nanos>(100 * kMicrosecond * 5 / 4));
  }
  // Without jitter the sequence is the exact capped geometric series.
  policy.jitter_frac = 0.0;
  Rng c(1);
  EXPECT_EQ(policy.BackoffFor(0, c), 10 * kMicrosecond);
  EXPECT_EQ(policy.BackoffFor(1, c), 20 * kMicrosecond);
  EXPECT_EQ(policy.BackoffFor(2, c), 40 * kMicrosecond);
  EXPECT_EQ(policy.BackoffFor(4, c), 100 * kMicrosecond);  // capped
  EXPECT_EQ(policy.BackoffFor(11, c), 100 * kMicrosecond);
}

TEST(RetryDeterminismTest, RetriesAreNonzeroUnderFaultsZeroWithout) {
  const RunResult lossy = RunOnce(3);
  EXPECT_GT(lossy.runtime_retries + lossy.ctx_retries, 0u);
  EXPECT_GT(lossy.retry_ns, 0);

  // Fault-free: the same workload with no injector reports zero retries.
  MemorySystem ms(Config(), sim::CostParams::Default(), 32 << 20);
  PushdownRuntime runtime(&ms);
  const VAddr a = ms.space().Alloc(256 * kPage, "d");
  ms.SeedData();
  auto caller = ms.CreateContext(Pool::kCompute);
  const Status st = runtime.Call(*caller, [&](ExecutionContext& mc) {
    for (uint64_t p = 0; p < 256; ++p) (void)mc.Load<int64_t>(a + p * kPage);
    return Status::OK();
  });
  ASSERT_TRUE(st.ok());
  EXPECT_EQ(runtime.retry_events(), 0u);
  EXPECT_EQ(caller->metrics().retries, 0u);
  EXPECT_EQ(runtime.last_breakdown().retry_ns, 0);
}

}  // namespace
}  // namespace teleport::tp
