#include "teleport/pushdown.h"

#include <cstdint>
#include <stdexcept>

#include <gtest/gtest.h>

namespace teleport::tp {
namespace {

using ddc::DdcConfig;
using ddc::ExecutionContext;
using ddc::MemorySystem;
using ddc::Platform;
using ddc::Pool;
using ddc::VAddr;

constexpr uint64_t kPage = 4096;

DdcConfig SmallDdc() {
  DdcConfig c;
  c.platform = Platform::kBaseDdc;
  c.compute_cache_bytes = 8 * kPage;
  c.memory_pool_bytes = 1024 * kPage;
  return c;
}

struct SumArgs {
  VAddr data;
  uint64_t count;
  int64_t result;
};

Status SumFn(ExecutionContext& ctx, void* arg) {
  auto* a = static_cast<SumArgs*>(arg);
  int64_t sum = 0;
  for (uint64_t i = 0; i < a->count; ++i) {
    sum += ctx.Load<int64_t>(a->data + i * 8);
    ctx.ChargeCpu(1);
  }
  a->result = sum;
  return Status::OK();
}

class PushdownTest : public ::testing::Test {
 protected:
  PushdownTest()
      : ms_(SmallDdc(), sim::CostParams::Default(), 64 << 20),
        runtime_(&ms_) {}

  VAddr MakeData(uint64_t count) {
    const VAddr a = ms_.space().Alloc(count * 8, "data");
    auto* p = static_cast<int64_t*>(ms_.space().HostPtr(a, count * 8));
    for (uint64_t i = 0; i < count; ++i) p[i] = static_cast<int64_t>(i);
    ms_.SeedData();
    return a;
  }

  MemorySystem ms_;
  PushdownRuntime runtime_;
};

TEST_F(PushdownTest, ExecutesFunctionWithCorrectResult) {
  const VAddr a = MakeData(10000);
  auto caller = ms_.CreateContext(Pool::kCompute);
  SumArgs args{a, 10000, 0};
  const Status st = runtime_.Pushdown(*caller, SumFn, &args);
  ASSERT_TRUE(st.ok()) << st;
  EXPECT_EQ(args.result, 10000LL * 9999 / 2);
  EXPECT_EQ(runtime_.completed_calls(), 1u);
  EXPECT_EQ(caller->metrics().pushdown_calls, 1u);
}

TEST_F(PushdownTest, CallerClockAdvancesPastAllPhases) {
  const VAddr a = MakeData(10000);
  auto caller = ms_.CreateContext(Pool::kCompute);
  SumArgs args{a, 10000, 0};
  ASSERT_TRUE(runtime_.Pushdown(*caller, SumFn, &args).ok());
  const PushdownBreakdown& bd = runtime_.last_breakdown();
  EXPECT_GE(caller->now(), bd.Total() - bd.pre_sync_ns);
  EXPECT_GT(bd.context_setup_ns, 0);
  EXPECT_GT(bd.function_exec_ns, 0);
  EXPECT_GT(bd.request_transfer_ns, 0);
  EXPECT_GT(bd.response_transfer_ns, 0);
}

TEST_F(PushdownTest, PushedScanAvoidsRemoteTransfers) {
  // The whole point of TELEPORT: the pushed function reads pool-resident
  // data locally, so no page crosses the fabric during execution.
  const VAddr a = MakeData(100000);
  auto caller = ms_.CreateContext(Pool::kCompute);
  SumArgs args{a, 100000, 0};
  ASSERT_TRUE(runtime_.Pushdown(*caller, SumFn, &args).ok());
  EXPECT_EQ(caller->metrics().bytes_from_memory_pool, 0u);
  EXPECT_GT(caller->metrics().memory_pool_hits, 0u);
}

TEST_F(PushdownTest, PushdownBeatsRemoteScanForLargeData) {
  // Same scan executed (a) from the compute pool over the cold cache and
  // (b) pushed down. Pushdown must win by a large factor (Fig 12/13).
  const uint64_t count = 500000;  // ~4 MiB >> 32 KiB cache
  const VAddr a = MakeData(count);
  auto remote = ms_.CreateContext(Pool::kCompute);
  SumArgs args{a, count, 0};
  ASSERT_TRUE(SumFn(*remote, &args).ok());
  const Nanos remote_time = remote->now();
  EXPECT_EQ(args.result, static_cast<int64_t>(count * (count - 1) / 2));

  // Fresh system for the pushdown run (cold state again).
  MemorySystem ms2(SmallDdc(), sim::CostParams::Default(), 64 << 20);
  const VAddr a2 = ms2.space().Alloc(count * 8, "data");
  auto* p = static_cast<int64_t*>(ms2.space().HostPtr(a2, count * 8));
  for (uint64_t i = 0; i < count; ++i) p[i] = static_cast<int64_t>(i);
  ms2.SeedData();
  PushdownRuntime rt2(&ms2);
  auto caller = ms2.CreateContext(Pool::kCompute);
  SumArgs args2{a2, count, 0};
  ASSERT_TRUE(rt2.Pushdown(*caller, SumFn, &args2).ok());
  EXPECT_EQ(args2.result, args.result);
  EXPECT_LT(caller->now() * 3, remote_time);
}

TEST_F(PushdownTest, ErrorStatusPropagates) {
  auto caller = ms_.CreateContext(Pool::kCompute);
  PushdownFn failing = [](ExecutionContext&, void*) -> Status {
    return Status::InvalidArgument("bad plan fragment");
  };
  const Status st = runtime_.Pushdown(*caller, failing, nullptr);
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
}

TEST_F(PushdownTest, ExceptionRethrownAtCaller) {
  auto caller = ms_.CreateContext(Pool::kCompute);
  EXPECT_THROW(
      {
        (void)runtime_.Call(*caller, [](ExecutionContext&) -> Status {
          throw std::runtime_error("segfault analog");
        });
      },
      std::runtime_error);
}

TEST_F(PushdownTest, CallWrapperReturnsStatusWithoutException) {
  MakeData(16);
  auto caller = ms_.CreateContext(Pool::kCompute);
  const Status st = runtime_.Call(*caller, [](ExecutionContext& ctx) {
    ctx.ChargeCpu(100);
    return Status::OK();
  });
  EXPECT_TRUE(st.ok());
}

TEST_F(PushdownTest, UnreachablePoolReturnsUnavailable) {
  auto caller = ms_.CreateContext(Pool::kCompute);
  ms_.fabric().set_reachable(false);
  SumArgs args{0, 0, 0};
  EXPECT_TRUE(runtime_.Pushdown(*caller, SumFn, &args).IsUnavailable());
  EXPECT_TRUE(runtime_.CheckHeartbeat(*caller).IsUnavailable());
}

TEST_F(PushdownTest, HeartbeatOkWhenReachable) {
  auto caller = ms_.CreateContext(Pool::kCompute);
  EXPECT_TRUE(runtime_.CheckHeartbeat(*caller).ok());
  EXPECT_GT(caller->now(), 0);
}

TEST_F(PushdownTest, KillTimeoutAbortsBuggyFunction) {
  auto caller = ms_.CreateContext(Pool::kCompute);
  runtime_.set_kill_timeout(1 * kMillisecond);
  const Status st = runtime_.Call(*caller, [](ExecutionContext& ctx) {
    ctx.AdvanceTime(10 * kMillisecond);  // "infinite loop"
    return Status::OK();
  });
  EXPECT_TRUE(st.IsFault());
}

TEST_F(PushdownTest, TimeoutCancelsQueuedRequest) {
  MakeData(1024);
  // Occupy the single instance with a long request from thread A.
  auto a = ms_.CreateContext(Pool::kCompute);
  ASSERT_TRUE(runtime_
                  .Call(*a,
                        [](ExecutionContext& ctx) {
                          ctx.AdvanceTime(50 * kMillisecond);
                          return Status::OK();
                        })
                  .ok());
  // Thread B (clock at 0) now queues behind ~50ms of work; with a 1ms
  // timeout the try_cancel succeeds.
  auto b = ms_.CreateContext(Pool::kCompute);
  PushdownFlags flags;
  flags.timeout_ns = 1 * kMillisecond;
  const Status st = runtime_.Call(
      *b, [](ExecutionContext&) { return Status::OK(); }, flags);
  EXPECT_TRUE(st.IsTimedOut());
  EXPECT_EQ(runtime_.cancelled_calls(), 1u);
  // B is free again shortly after its timeout, not after A's 50ms.
  EXPECT_LT(b->now(), 10 * kMillisecond);
}

TEST_F(PushdownTest, RunningRequestDeclinesCancel) {
  MakeData(1024);
  auto caller = ms_.CreateContext(Pool::kCompute);
  PushdownFlags flags;
  flags.timeout_ns = 1 * kMillisecond;
  // The request starts immediately (no queue), so the timeout cannot cancel
  // it; the caller waits for the full 20ms execution (§3.2).
  const Status st = runtime_.Call(
      *caller,
      [](ExecutionContext& ctx) {
        ctx.AdvanceTime(20 * kMillisecond);
        return Status::OK();
      },
      flags);
  EXPECT_TRUE(st.ok());
  EXPECT_GE(caller->now(), 20 * kMillisecond);
}

TEST_F(PushdownTest, ConcurrentRequestsSerializeOnOneInstance) {
  MakeData(1024);
  auto a = ms_.CreateContext(Pool::kCompute);
  auto b = ms_.CreateContext(Pool::kCompute);
  auto work = [](ExecutionContext& ctx) {
    ctx.AdvanceTime(5 * kMillisecond);
    return Status::OK();
  };
  ASSERT_TRUE(runtime_.Call(*a, work).ok());
  ASSERT_TRUE(runtime_.Call(*b, work).ok());
  // B queued behind A's 5ms on the single instance.
  EXPECT_GE(b->now(), 10 * kMillisecond);
  EXPECT_GT(runtime_.last_breakdown().queue_wait_ns, 0);
}

TEST_F(PushdownTest, TwoInstancesOverlapRequests) {
  MemorySystem ms2(SmallDdc(), sim::CostParams::Default(), 64 << 20);
  ms2.space().Alloc(kPage, "d");
  ms2.SeedData();
  PushdownRuntime rt2(&ms2, /*num_instances=*/2);
  auto a = ms2.CreateContext(Pool::kCompute);
  auto b = ms2.CreateContext(Pool::kCompute);
  auto work = [](ExecutionContext& ctx) {
    ctx.AdvanceTime(5 * kMillisecond);
    return Status::OK();
  };
  ASSERT_TRUE(rt2.Call(*a, work).ok());
  ASSERT_TRUE(rt2.Call(*b, work).ok());
  EXPECT_LT(b->now(), 10 * kMillisecond);  // ran in parallel with A
}

TEST_F(PushdownTest, PageListCompressionIsHigh) {
  // Fill the cache with contiguous pages; the RLE'd resident list must
  // compress far better than 20x (§6).
  const VAddr a = MakeData(8 * kPage / 8);
  auto caller = ms_.CreateContext(Pool::kCompute);
  for (int p = 0; p < 8; ++p) caller->Load<int64_t>(a + p * kPage);
  SumArgs args{a, 16, 0};
  ASSERT_TRUE(runtime_.Pushdown(*caller, SumFn, &args).ok());
  EXPECT_GT(runtime_.last_page_list_compression(), 2.0);
}

TEST(InstancePoolTest, MakespanShrinksWithInstances) {
  const auto params = sim::CostParams::Default();
  const Nanos busy = 10 * kMillisecond;
  const Nanos stall = 3 * kMillisecond;
  const Nanos m1 = InstancePoolMakespan(8, busy, stall, 1, 2, params);
  const Nanos m2 = InstancePoolMakespan(8, busy, stall, 2, 2, params);
  const Nanos m4 = InstancePoolMakespan(8, busy, stall, 4, 2, params);
  EXPECT_GT(m1, m2);
  EXPECT_GE(m2, m4);
}

TEST(InstancePoolTest, SpeedupDiminishesPastPhysicalCores) {
  // Fig 17: with 2 memory-pool cores, going 2 -> 4 instances helps far less
  // than 1 -> 2 (stall overlap only), and context switching eats into it.
  const auto params = sim::CostParams::Default();
  const Nanos busy = 10 * kMillisecond;
  const Nanos stall = 3 * kMillisecond;
  const double m1 = static_cast<double>(
      InstancePoolMakespan(8, busy, stall, 1, 2, params));
  const double m2 = static_cast<double>(
      InstancePoolMakespan(8, busy, stall, 2, 2, params));
  const double m4 = static_cast<double>(
      InstancePoolMakespan(8, busy, stall, 4, 2, params));
  const double gain12 = m1 / m2;
  const double gain24 = m2 / m4;
  EXPECT_GT(gain12, 1.7);
  EXPECT_LT(gain24, gain12 / 1.5);
}

TEST(InstancePoolTest, SingleRequestUnaffectedByInstances) {
  const auto params = sim::CostParams::Default();
  const Nanos m1 = InstancePoolMakespan(1, kMillisecond, 0, 1, 2, params);
  const Nanos m4 = InstancePoolMakespan(1, kMillisecond, 0, 4, 2, params);
  EXPECT_NEAR(static_cast<double>(m1), static_cast<double>(m4),
              static_cast<double>(m1) * 0.2);
}

}  // namespace
}  // namespace teleport::tp
