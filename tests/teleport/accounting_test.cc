#include <cstdint>

#include <gtest/gtest.h>

#include "net/faults.h"
#include "teleport/pushdown.h"

namespace teleport::tp {
namespace {

using ddc::DdcConfig;
using ddc::ExecutionContext;
using ddc::MemorySystem;
using ddc::Platform;
using ddc::Pool;
using ddc::VAddr;

constexpr uint64_t kPage = 4096;

DdcConfig Config() {
  DdcConfig c;
  c.platform = Platform::kBaseDdc;
  c.compute_cache_bytes = 16 * kPage;
  c.memory_pool_bytes = 2048 * kPage;
  return c;
}

/// Conservation and attribution properties of the simulator's accounting:
/// clocks only move forward, bytes match page movements, and the
/// per-phase pushdown breakdown adds up to the caller's elapsed time.
class AccountingTest : public ::testing::Test {
 protected:
  AccountingTest()
      : ms_(Config(), sim::CostParams::Default(), 128 << 20), runtime_(&ms_) {}

  VAddr Seeded(uint64_t pages) {
    const VAddr a = ms_.space().Alloc(pages * kPage, "d");
    ms_.SeedData();
    return a;
  }

  MemorySystem ms_;
  PushdownRuntime runtime_;
};

TEST_F(AccountingTest, CleanReadTrafficEqualsMissesTimesPageSize) {
  const VAddr a = Seeded(64);
  auto ctx = ms_.CreateContext(Pool::kCompute);
  for (uint64_t p = 0; p < 64; ++p) (void)ctx->Load<int64_t>(a + p * kPage);
  EXPECT_EQ(ctx->metrics().bytes_from_memory_pool,
            ctx->metrics().cache_misses * kPage);
  EXPECT_EQ(ctx->metrics().bytes_to_memory_pool, 0u);
}

TEST_F(AccountingTest, WritebackTrafficEqualsDirtyEvictions) {
  const VAddr a = Seeded(64);
  auto ctx = ms_.CreateContext(Pool::kCompute);
  for (uint64_t p = 0; p < 64; ++p) ctx->Store<int64_t>(a + p * kPage, 1);
  EXPECT_EQ(ctx->metrics().bytes_to_memory_pool,
            ctx->metrics().dirty_writebacks * kPage);
}

TEST_F(AccountingTest, BreakdownSumsToCallerElapsedTime) {
  const VAddr a = Seeded(256);
  auto caller = ms_.CreateContext(Pool::kCompute);
  // Dirty some cache so pre-phases have work.
  for (uint64_t p = 0; p < 8; ++p) caller->Store<int64_t>(a + p * kPage, 1);
  const Nanos before = caller->now();
  const Status st = runtime_.Call(*caller, [&](ExecutionContext& mc) {
    for (uint64_t p = 0; p < 256; ++p) (void)mc.Load<int64_t>(a + p * kPage);
    mc.ChargeCpu(100'000);
    return Status::OK();
  });
  ASSERT_TRUE(st.ok());
  const Nanos elapsed = caller->now() - before;
  const PushdownBreakdown& bd = runtime_.last_breakdown();
  // All components are non-negative and their sum equals the caller's
  // observed elapsed time exactly (virtual time is conserved).
  EXPECT_GE(bd.pre_sync_ns, 0);
  EXPECT_GE(bd.queue_wait_ns, 0);
  EXPECT_EQ(bd.Total(), elapsed);
}

TEST_F(AccountingTest, TotalBreakdownAccumulates) {
  const VAddr a = Seeded(16);
  auto caller = ms_.CreateContext(Pool::kCompute);
  Nanos sum = 0;
  for (int i = 0; i < 3; ++i) {
    const Nanos before = caller->now();
    ASSERT_TRUE(runtime_
                    .Call(*caller,
                          [&](ExecutionContext& mc) {
                            (void)mc.Load<int64_t>(a);
                            return Status::OK();
                          })
                    .ok());
    sum += caller->now() - before;
  }
  EXPECT_EQ(runtime_.completed_calls(), 3u);
  EXPECT_EQ(runtime_.total_breakdown().Total(), sum);
}

TEST_F(AccountingTest, ClocksAreMonotonic) {
  const VAddr a = Seeded(32);
  auto ctx = ms_.CreateContext(Pool::kCompute);
  Nanos prev = 0;
  for (int i = 0; i < 500; ++i) {
    (void)ctx->Load<int64_t>(a + (i % 32) * kPage + (i % 100) * 8);
    ASSERT_GE(ctx->now(), prev);
    prev = ctx->now();
  }
}

TEST_F(AccountingTest, FabricCountsMatchContextTotals) {
  const VAddr a = Seeded(64);
  auto ctx = ms_.CreateContext(Pool::kCompute);
  for (uint64_t p = 0; p < 64; ++p) (void)ctx->Load<int64_t>(a + p * kPage);
  // One context did everything: its message count equals the fabric's.
  EXPECT_EQ(ctx->metrics().net_messages, ms_.fabric().total_messages());
  EXPECT_GE(ms_.fabric().total_bytes(), ctx->metrics().bytes_from_memory_pool);
}

TEST_F(AccountingTest, PushedWorkMergesIntoCallerMetrics) {
  const VAddr a = Seeded(128);
  auto caller = ms_.CreateContext(Pool::kCompute);
  const Status st = runtime_.Call(*caller, [&](ExecutionContext& mc) {
    for (uint64_t p = 0; p < 128; ++p) (void)mc.Load<int64_t>(a + p * kPage);
    return Status::OK();
  });
  ASSERT_TRUE(st.ok());
  // The memory-side pool hits surfaced in the caller's merged metrics.
  EXPECT_GE(caller->metrics().memory_pool_hits, 128u);
  EXPECT_EQ(caller->metrics().pushdown_calls, 1u);
}

TEST_F(AccountingTest, LatencyHistogramsTrackCalls) {
  const VAddr a = Seeded(32);
  auto caller = ms_.CreateContext(Pool::kCompute);
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(runtime_
                    .Call(*caller,
                          [&](ExecutionContext& mc) {
                            (void)mc.Load<int64_t>(a + i * kPage);
                            mc.ChargeCpu(1'000);
                            return Status::OK();
                          })
                    .ok());
  }
  EXPECT_EQ(runtime_.call_latency().count(), 5u);
  EXPECT_GT(runtime_.call_latency().Mean(), 0.0);
  EXPECT_GE(runtime_.call_latency().max(),
            runtime_.last_breakdown().Total());
  EXPECT_EQ(runtime_.online_sync_latency().count(), 5u);
  // Percentiles bracket the mean.
  EXPECT_LE(runtime_.call_latency().Percentile(1),
            runtime_.call_latency().Percentile(99));
}

// --- FallbackPolicy::kLocal accounting (§3.2 escape hatch) -------------------
//
// Conservation under recovery: however a call degrades — dropped requests,
// a timeout-cancel, the transparent local re-run — the breakdown must
// still sum *exactly* to the caller's elapsed virtual time, with every
// component (including the synchronization phases) counted exactly once
// and retry_ns never driven negative by double-counted work.

TEST_F(AccountingTest, LocalFallbackBreakdownSumsToElapsedExactly) {
  const VAddr a = Seeded(16);
  auto caller = ms_.CreateContext(Pool::kCompute);
  net::FaultInjector inj(/*seed=*/6);
  net::FaultSpec drop_requests;
  drop_requests.drop_p = 1.0;  // the pushdown request never gets through
  inj.SetSpec(net::MessageKind::kPushdownRequest, drop_requests);
  ms_.fabric().set_fault_injector(&inj);

  PushdownFlags flags;
  flags.fallback = FallbackPolicy::kLocal;
  int executions = 0;
  const Nanos t0 = caller->now();
  const Status st = runtime_.Call(
      *caller,
      [&](ExecutionContext& ctx) {
        ++executions;
        for (uint64_t p = 0; p < 16; ++p) {
          (void)ctx.Load<int64_t>(a + p * kPage);
        }
        return Status::OK();
      },
      flags);
  ASSERT_TRUE(st.ok()) << st;
  EXPECT_EQ(executions, 1);
  EXPECT_EQ(runtime_.fallback_calls(), 1u);

  const PushdownBreakdown& bd = runtime_.last_breakdown();
  EXPECT_EQ(bd.Total(), caller->now() - t0);
  EXPECT_GT(bd.function_exec_ns, 0);
  EXPECT_GT(bd.retry_ns, 0);  // the exhausted attempts + backoff are visible
  EXPECT_GE(bd.pre_sync_ns, 0);
  EXPECT_GE(bd.post_sync_ns, 0);
  // The fallback is a completed call for every aggregate.
  EXPECT_EQ(runtime_.completed_calls(), 1u);
  EXPECT_EQ(runtime_.call_latency().count(), 1u);
  EXPECT_EQ(caller->metrics().pushdown_calls, 1u);
  EXPECT_EQ(caller->metrics().fallbacks, 1u);
  ms_.fabric().set_fault_injector(nullptr);
}

TEST_F(AccountingTest, CancelledThenLocalNeverDoubleCountsSync) {
  const VAddr a = Seeded(32);
  auto caller = ms_.CreateContext(Pool::kCompute);
  // Dirty some cache pages so the eager pre-sync below has real work: a
  // double-counted sync phase would show up as Total() > elapsed (or as
  // retry_ns < 0 after the conservation rebalance).
  for (uint64_t p = 0; p < 8; ++p) {
    caller->Store<int64_t>(a + p * kPage, static_cast<int64_t>(p));
  }

  net::FaultInjector inj(/*seed=*/9);
  net::FaultSpec delay_requests;
  delay_requests.delay_p = 1.0;  // request crawls; the cancel wins the race
  delay_requests.delay_ns = 10 * kMillisecond;
  inj.SetSpec(net::MessageKind::kPushdownRequest, delay_requests);
  ms_.fabric().set_fault_injector(&inj);

  for (const SyncStrategy sync :
       {SyncStrategy::kOnDemand, SyncStrategy::kEager}) {
    const uint64_t fallbacks_before = runtime_.fallback_calls();
    PushdownFlags flags;
    flags.sync = sync;
    flags.fallback = FallbackPolicy::kLocal;
    flags.timeout_ns = 50 * kMicrosecond;
    int executions = 0;
    const Nanos t0 = caller->now();
    const Status st = runtime_.Call(
        *caller,
        [&](ExecutionContext& ctx) {
          ++executions;
          for (uint64_t p = 0; p < 8; ++p) {
            (void)ctx.Load<int64_t>(a + p * kPage);
          }
          return Status::OK();
        },
        flags);
    ASSERT_TRUE(st.ok()) << st << " sync " << SyncStrategyToString(sync);
    EXPECT_EQ(executions, 1) << SyncStrategyToString(sync);
    EXPECT_EQ(runtime_.fallback_calls(), fallbacks_before + 1);

    const PushdownBreakdown& bd = runtime_.last_breakdown();
    // Exact conservation: every phase counted once, nothing lost, nothing
    // twice. A double-counted pre-sync would break this equality.
    EXPECT_EQ(bd.Total(), caller->now() - t0) << SyncStrategyToString(sync);
    EXPECT_GE(bd.retry_ns, 0) << SyncStrategyToString(sync);
    EXPECT_GT(bd.function_exec_ns, 0) << SyncStrategyToString(sync);
  }
  EXPECT_GE(runtime_.cancelled_calls(), 2u);
  ms_.fabric().set_fault_injector(nullptr);
}

TEST_F(AccountingTest, LocalFallbackFlagIsFreeOnHealthyFabric) {
  const VAddr a = Seeded(8);
  auto caller = ms_.CreateContext(Pool::kCompute);
  PushdownFlags flags;
  flags.fallback = FallbackPolicy::kLocal;
  const Nanos t0 = caller->now();
  const Status st = runtime_.Call(
      *caller,
      [&](ExecutionContext& ctx) {
        (void)ctx.Load<int64_t>(a);
        return Status::OK();
      },
      flags);
  ASSERT_TRUE(st.ok()) << st;
  // No fault, no fallback, no retry time — and the sum still holds.
  EXPECT_EQ(runtime_.fallback_calls(), 0u);
  EXPECT_EQ(runtime_.last_breakdown().retry_ns, 0);
  EXPECT_EQ(runtime_.last_breakdown().Total(), caller->now() - t0);
}

TEST_F(AccountingTest, MemoryIntensityZeroOnLocalPlatform) {
  DdcConfig c;
  c.platform = Platform::kLocal;
  MemorySystem lms(c, sim::CostParams::Default(), 16 << 20);
  const VAddr a = lms.space().Alloc(64 * kPage, "d");
  lms.SeedData();
  auto ctx = lms.CreateContext(Pool::kCompute);
  for (uint64_t p = 0; p < 64; ++p) (void)ctx->Load<int64_t>(a + p * kPage);
  EXPECT_EQ(ctx->metrics().RemoteMemoryBytes(), 0u);
  EXPECT_EQ(ctx->metrics().net_messages, 0u);
}

}  // namespace
}  // namespace teleport::tp
