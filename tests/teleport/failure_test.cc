// Failure-injection tests for the §3.2 failure story: heartbeat detection,
// the panic latch (main memory is lost once the pool is unreachable), kill
// timeouts for buggy functions, and exception transport.

#include <cstdint>
#include <stdexcept>

#include <gtest/gtest.h>

#include "teleport/pushdown.h"

namespace teleport::tp {
namespace {

using ddc::DdcConfig;
using ddc::ExecutionContext;
using ddc::MemorySystem;
using ddc::Platform;
using ddc::Pool;
using ddc::VAddr;

constexpr uint64_t kPage = 4096;

DdcConfig Config() {
  DdcConfig c;
  c.platform = Platform::kBaseDdc;
  c.compute_cache_bytes = 16 * kPage;
  c.memory_pool_bytes = 1024 * kPage;
  return c;
}

class FailureTest : public ::testing::Test {
 protected:
  FailureTest()
      : ms_(Config(), sim::CostParams::Default(), 32 << 20), runtime_(&ms_) {
    data_ = ms_.space().Alloc(64 * kPage, "d");
    ms_.SeedData();
  }

  Status Touch(ExecutionContext& caller) {
    return runtime_.Call(caller, [&](ExecutionContext& mc) {
      (void)mc.Load<int64_t>(data_);
      return Status::OK();
    });
  }

  MemorySystem ms_;
  PushdownRuntime runtime_;
  VAddr data_;
};

TEST_F(FailureTest, FailureWindowHitsCallsInsideIt) {
  ms_.fabric().InjectFailureWindow(5 * kMillisecond, 50 * kMillisecond);
  auto caller = ms_.CreateContext(Pool::kCompute);
  // Before the window: fine.
  EXPECT_TRUE(Touch(*caller).ok());
  // Move into the window.
  caller->AdvanceTime(10 * kMillisecond);
  EXPECT_TRUE(Touch(*caller).IsUnavailable());
}

TEST_F(FailureTest, PanicLatchesForever) {
  ms_.fabric().InjectFailureWindow(0, 1 * kMillisecond);
  auto caller = ms_.CreateContext(Pool::kCompute);
  EXPECT_TRUE(Touch(*caller).IsUnavailable());
  EXPECT_TRUE(runtime_.panicked());
  // Even after the injected window ends, the runtime stays down — the
  // paper's semantics: once the pool is lost, main memory is lost.
  caller->AdvanceTime(100 * kMillisecond);
  EXPECT_TRUE(Touch(*caller).IsUnavailable());
  EXPECT_TRUE(runtime_.CheckHeartbeat(*caller).IsUnavailable());
}

TEST_F(FailureTest, HeartbeatDetectsBeforeAnyPushdown) {
  ms_.fabric().InjectFailureWindow(0);
  auto caller = ms_.CreateContext(Pool::kCompute);
  EXPECT_TRUE(runtime_.CheckHeartbeat(*caller).IsUnavailable());
  EXPECT_TRUE(runtime_.panicked());
}

TEST_F(FailureTest, PermanentFailureHasNoEnd) {
  ms_.fabric().InjectFailureWindow(2 * kMillisecond);  // until = kNeverHeals
  auto caller = ms_.CreateContext(Pool::kCompute);
  EXPECT_TRUE(Touch(*caller).ok());
  caller->AdvanceTime(10 * kMillisecond);
  EXPECT_TRUE(Touch(*caller).IsUnavailable());
}

TEST_F(FailureTest, HealthySystemNeverPanics) {
  auto caller = ms_.CreateContext(Pool::kCompute);
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(Touch(*caller).ok());
    ASSERT_TRUE(runtime_.CheckHeartbeat(*caller).ok());
  }
  EXPECT_FALSE(runtime_.panicked());
}

TEST_F(FailureTest, BuggyFunctionKilledOthersProceed) {
  runtime_.set_kill_timeout(1 * kMillisecond);
  auto caller = ms_.CreateContext(Pool::kCompute);
  const Status st = runtime_.Call(*caller, [](ExecutionContext& mc) {
    mc.AdvanceTime(100 * kMillisecond);  // runaway
    return Status::OK();
  });
  EXPECT_TRUE(st.IsFault());
  EXPECT_FALSE(runtime_.panicked());  // a killed fn is not a pool failure
  // The workqueue is unblocked: the next call succeeds.
  runtime_.set_kill_timeout(600 * kSecond);
  EXPECT_TRUE(Touch(*caller).ok());
}

TEST_F(FailureTest, ExceptionDoesNotPoisonTheSession) {
  auto caller = ms_.CreateContext(Pool::kCompute);
  EXPECT_THROW(
      {
        (void)runtime_.Call(*caller, [](ExecutionContext&) -> Status {
          throw std::runtime_error("segfault analog");
        });
      },
      std::runtime_error);
  // The temporary context was recycled and coherence state cleared.
  EXPECT_FALSE(ms_.pushdown_active());
  EXPECT_TRUE(Touch(*caller).ok());
}

TEST_F(FailureTest, ErrorStatusAlsoEndsTheSessionCleanly) {
  auto caller = ms_.CreateContext(Pool::kCompute);
  const Status st = runtime_.Call(*caller, [](ExecutionContext&) {
    return Status::InvalidArgument("bad arg vector");
  });
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
  EXPECT_FALSE(ms_.pushdown_active());
  EXPECT_TRUE(Touch(*caller).ok());
}

TEST_F(FailureTest, FabricResetClearsInjection) {
  ms_.fabric().InjectFailureWindow(0);
  EXPECT_FALSE(ms_.fabric().ReachableAt(1));
  ms_.fabric().Reset();
  EXPECT_TRUE(ms_.fabric().ReachableAt(1));
}

}  // namespace
}  // namespace teleport::tp
