// Model-based test of the §4.1 coherence protocol: an independent oracle
// implements the two-sided permission state machine (Figs 8/9) as a pure
// transition function; random operation sequences must keep the simulator
// and the oracle in lockstep, page by page, operation by operation.

#include <set>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "ddc/memory_system.h"

namespace teleport::ddc {
namespace {

constexpr uint64_t kPage = 4096;

/// Pure re-implementation of the default (MESI) protocol rules.
struct OracleState {
  Perm compute = Perm::kNone;
  Perm temp = Perm::kNone;
  bool compute_dirty = false;

  friend bool operator<(const OracleState& a, const OracleState& b) {
    return std::tie(a.compute, a.temp) < std::tie(b.compute, b.temp);
  }
};

enum class Op { kComputeRead, kComputeWrite, kMemoryRead, kMemoryWrite };

OracleState Step(OracleState s, Op op) {
  switch (op) {
    case Op::kComputeRead:
      if (s.compute == Perm::kNone) {
        // Fault to the memory pool; temp downgraded if writable (Fig 9).
        if (s.temp == Perm::kWrite) s.temp = Perm::kRead;
        s.compute = Perm::kRead;
      }
      return s;
    case Op::kComputeWrite:
      if (s.compute != Perm::kWrite) {
        // Upgrade/fetch invalidates the temporary context's entry.
        s.temp = Perm::kNone;
        s.compute = Perm::kWrite;
      }
      s.compute_dirty = true;
      return s;
    case Op::kMemoryRead:
      if (s.temp == Perm::kNone) {
        if (s.compute == Perm::kNone) {
          s.temp = Perm::kRead;  // true fault, no compute involvement
        } else {
          // Request to compute: downgrade a writer, flush dirty data.
          if (s.compute == Perm::kWrite) s.compute = Perm::kRead;
          s.compute_dirty = false;
          s.temp = Perm::kRead;
        }
      }
      return s;
    case Op::kMemoryWrite:
      if (s.temp != Perm::kWrite) {
        if (s.compute != Perm::kNone) {
          // Write request evicts the compute copy (default protocol).
          s.compute = Perm::kNone;
          s.compute_dirty = false;
        }
        s.temp = Perm::kWrite;
      }
      return s;
  }
  return s;
}

class ProtocolTableTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ProtocolTableTest, SimulatorMatchesOracleOnRandomTraces) {
  DdcConfig c;
  c.platform = Platform::kBaseDdc;
  c.compute_cache_bytes = 1024 * kPage;  // huge: no evictions interfere
  c.memory_pool_bytes = 4096 * kPage;
  MemorySystem ms(c, sim::CostParams::Default(), 8 << 20);
  constexpr int kPages = 8;
  const VAddr base = ms.space().Alloc(kPages * kPage, "d");
  ms.SeedData();

  Rng rng(GetParam());
  auto cc = ms.CreateContext(Pool::kCompute);
  // Pre-session cache state: a random mix of uncached / read / written.
  OracleState oracle[kPages];
  for (int p = 0; p < kPages; ++p) {
    const double roll = rng.NextDouble();
    if (roll < 0.34) {
      // uncached
    } else if (roll < 0.67) {
      (void)cc->Load<int64_t>(base + p * kPage);
      oracle[p].compute = Perm::kRead;
    } else {
      cc->Store<int64_t>(base + p * kPage, 1);
      oracle[p].compute = Perm::kWrite;
      oracle[p].compute_dirty = true;
    }
  }
  ms.BeginPushdownSession(CoherenceMode::kMesi);
  // Fig 8 initial temporary table.
  for (auto& s : oracle) {
    s.temp = s.compute == Perm::kWrite
                 ? Perm::kNone
                 : (s.compute == Perm::kRead ? Perm::kRead : Perm::kWrite);
  }
  auto mc = ms.CreateContext(Pool::kMemory);

  std::set<OracleState> visited;
  for (int i = 0; i < 600; ++i) {
    const int p = static_cast<int>(rng.Uniform(kPages));
    const VAddr addr = base + static_cast<VAddr>(p) * kPage;
    const Op op = static_cast<Op>(rng.Uniform(4));
    switch (op) {
      case Op::kComputeRead:
        (void)cc->Load<int64_t>(addr);
        break;
      case Op::kComputeWrite:
        cc->Store<int64_t>(addr, i);
        break;
      case Op::kMemoryRead:
        (void)mc->Load<int64_t>(addr);
        break;
      case Op::kMemoryWrite:
        mc->Store<int64_t>(addr, i);
        break;
    }
    oracle[p] = Step(oracle[p], op);
    visited.insert(oracle[p]);
    ASSERT_EQ(ms.compute_perm(ms.space().PageOf(addr)), oracle[p].compute)
        << "op " << i << " page " << p;
    ASSERT_EQ(ms.temp_perm(ms.space().PageOf(addr)), oracle[p].temp)
        << "op " << i << " page " << p;
    ASSERT_EQ(ms.compute_dirty(ms.space().PageOf(addr)),
              oracle[p].compute_dirty)
        << "op " << i << " page " << p;
    ms.CheckSwmrInvariant();
  }
  // The trace explored the protocol's recurrent state set. Without cache
  // evictions the reachable post-operation states are exactly (I,W),
  // (R,R) and (W,I); (R,I) must never appear (§4.1: "(R, emptyset) does
  // not exist in our protocol").
  EXPECT_GE(visited.size(), 3u);
  for (const OracleState& s : visited) {
    EXPECT_FALSE(s.compute == Perm::kRead && s.temp == Perm::kNone)
        << "(R, none) is unreachable in the protocol";
  }
  ms.EndPushdownSession();
}

INSTANTIATE_TEST_SUITE_P(Seeds, ProtocolTableTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 77,
                                           1234, 80486, 424242));

}  // namespace
}  // namespace teleport::ddc
