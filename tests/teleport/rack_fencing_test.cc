// PR7 satellite: lease fencing and journal recovery are per memory shard.
//
// The single-pool code kept one epoch, one journal, and one set of replay
// obligations. Against that behavior these tests fail:
//   - a crash-restart of shard 1 must bump pool_epoch(1) only — shard 0's
//     lease epoch, journal, and resident pages are untouched;
//   - the model checker's recovery invariant (#6) scopes replay obligations
//     to the restarting shard, so a healthy crash of shard A with journaled
//     writes outstanding on shard B is NOT a violation (the old global
//     model flagged B's never-replayed pages), and a planted
//     kSkipJournalReplay on a cross-shard workload is STILL caught;
//   - a pushdown homed on shard 1 is fenced by shard 1's restart and
//     re-admitted under the fresh epoch.

#include <cstdint>

#include <gtest/gtest.h>

#include "ddc/memory_system.h"
#include "net/faults.h"
#include "teleport/model_checker.h"
#include "teleport/pushdown.h"

namespace teleport {
namespace {

constexpr uint64_t kPage = 4096;

ddc::DdcConfig TwoShardConfig() {
  ddc::DdcConfig cfg;
  cfg.platform = ddc::Platform::kBaseDdc;
  cfg.compute_cache_bytes = 16 * kPage;
  cfg.memory_pool_bytes = 1024 * kPage;
  cfg.memory_shards = 2;
  return cfg;
}

class RackFencingTest : public ::testing::Test {
 protected:
  RackFencingTest()
      : ms_(TwoShardConfig(), sim::CostParams::Default(), 32 << 20),
        runtime_(&ms_) {
    // 32 MiB of address space = 8192 pages, block-partitioned 2 ways: the
    // first allocation lands in shard 0; a filler pushes the second past
    // the partition boundary into shard 1.
    data0_ = ms_.space().Alloc(64 * kPage, "shard0");
    (void)ms_.space().Alloc((ms_.pages_per_shard() - 64) * kPage, "filler");
    data1_ = ms_.space().Alloc(64 * kPage, "shard1");
    TELEPORT_CHECK(ms_.ShardOf(ms_.space().PageOf(data0_)) == 0);
    TELEPORT_CHECK(ms_.ShardOf(ms_.space().PageOf(data1_)) == 1);
    ms_.SeedData();
    ms_.set_journal_enabled(true);
    ms_.fabric().set_fault_injector(&inj_);
  }

  /// Dirties 64 pages of each shard's slice through the 16-page cache; the
  /// forced writebacks are acknowledged pool writes, so each shard's redo
  /// journal ends up with live records for its own pages only.
  void DirtyBothShards(ddc::ExecutionContext& ctx) {
    for (uint64_t p = 0; p < 64; ++p) {
      ctx.Store<int64_t>(data0_ + p * kPage, static_cast<int64_t>(p) + 1);
      ctx.Store<int64_t>(data1_ + p * kPage, static_cast<int64_t>(p) + 101);
    }
  }

  Status Touch(ddc::ExecutionContext& caller, ddc::VAddr addr, int home) {
    tp::PushdownFlags flags;
    flags.home_shard = home;
    return runtime_.Call(
        caller,
        [&](ddc::ExecutionContext& mc) {
          (void)mc.Load<int64_t>(addr);
          return Status::OK();
        },
        flags);
  }

  ddc::MemorySystem ms_;
  tp::PushdownRuntime runtime_;
  net::FaultInjector inj_{/*seed=*/7};
  ddc::VAddr data0_ = 0;
  ddc::VAddr data1_ = 0;
};

// A crash-restart of shard 1 opens a fresh lease epoch on shard 1 only and
// replays shard 1's journal only. Shard 0 keeps its epoch, its journal's
// live records, and its resident pages.
TEST_F(RackFencingTest, CrashOfOneShardBumpsOnlyItsEpoch) {
  tp::ModelChecker checker(&ms_, tp::ModelChecker::OnViolation::kRecord);
  auto ctx = ms_.CreateContext(ddc::Pool::kCompute);
  DirtyBothShards(*ctx);
  const uint64_t live0 = ms_.journal(0).live_records();
  const uint64_t live1 = ms_.journal(1).live_records();
  ASSERT_GT(live0, 0u);
  ASSERT_GT(live1, 0u);

  inj_.ScheduleCrashRestart(ctx->now() + 1 * kMillisecond,
                            /*down_for=*/500 * kMicrosecond, /*node=*/1);
  ctx->AdvanceTime(10 * kMillisecond);
  const ddc::MemorySystem::RestartOutcome out =
      ms_.ApplyPoolRestartsAt(*ctx, ctx->now());
  EXPECT_EQ(out.lost, 0u);
  EXPECT_EQ(out.recovered, live1);
  EXPECT_EQ(ms_.pool_epoch(1), 2u);
  EXPECT_EQ(ms_.pool_epoch(0), 1u) << "shard 0's lease epoch moved on a "
                                      "crash it did not take";
  EXPECT_EQ(ms_.journal(0).live_records(), live0);
  EXPECT_EQ(ms_.journal(1).live_records(), live1);

  // Data on both slices is intact after the one-sided recovery.
  for (uint64_t p = 0; p < 64; ++p) {
    EXPECT_EQ(ctx->Load<int64_t>(data0_ + p * kPage),
              static_cast<int64_t>(p) + 1);
    EXPECT_EQ(ctx->Load<int64_t>(data1_ + p * kPage),
              static_cast<int64_t>(p) + 101);
  }
  EXPECT_EQ(checker.Finish(), 0u);
}

// Invariant #6, scoped per shard: a healthy crash-restart of shard 0 while
// shard 1 has journaled writes outstanding creates (and discharges) replay
// obligations for shard 0's pages ONLY. The old single-pool model created
// obligations for every journaled page and flagged shard 1's as
// never-replayed — this test fails against that behavior.
TEST_F(RackFencingTest, CrashOfShardZeroCreatesNoObligationsForShardOne) {
  tp::ModelChecker checker(&ms_, tp::ModelChecker::OnViolation::kRecord);
  auto ctx = ms_.CreateContext(ddc::Pool::kCompute);
  DirtyBothShards(*ctx);
  const uint64_t live1 = ms_.journal(1).live_records();
  ASSERT_GT(live1, 0u);

  inj_.ScheduleCrashRestart(ctx->now() + 1 * kMillisecond,
                            /*down_for=*/500 * kMicrosecond, /*node=*/0);
  ctx->AdvanceTime(10 * kMillisecond);
  const ddc::MemorySystem::RestartOutcome out =
      ms_.ApplyPoolRestartsAt(*ctx, ctx->now());
  EXPECT_EQ(out.lost, 0u);
  EXPECT_EQ(ms_.pool_epoch(0), 2u);
  EXPECT_EQ(ms_.pool_epoch(1), 1u);
  // Shard 1's records are still live and its obligations were never
  // created, so post-recovery traffic raises no violation.
  EXPECT_EQ(ms_.journal(1).live_records(), live1);
  EXPECT_TRUE(Touch(*ctx, data1_, /*home=*/1).ok());
  EXPECT_EQ(checker.Finish(), 0u);
}

// The planted kSkipJournalReplay must still be caught when the dropped
// replay is on one shard of a cross-shard workload: shard 0's healthy state
// cannot mask shard 1's discarded obligations.
TEST_F(RackFencingTest, CrossShardSkipJournalReplayIsStillCaught) {
  ms_.set_protocol_mutation(ddc::ProtocolMutation::kSkipJournalReplay);
  tp::ModelChecker checker(&ms_, tp::ModelChecker::OnViolation::kRecord);
  auto ctx = ms_.CreateContext(ddc::Pool::kCompute);
  DirtyBothShards(*ctx);
  ASSERT_GT(ms_.journal(1).live_records(), 0u);

  inj_.ScheduleCrashRestart(ctx->now() + 1 * kMillisecond,
                            /*down_for=*/500 * kMicrosecond, /*node=*/1);
  ctx->AdvanceTime(10 * kMillisecond);
  // The mutation drops shard 1's replay: its acknowledged writes vanish.
  EXPECT_GT(ms_.ApplyPoolRestartsAt(*ctx, ctx->now()).lost, 0u);
  EXPECT_GT(checker.Finish(), 0u);
}

// A crash-restart window on shard 1 between admission and the pool-side
// queue point makes the lease stale: the pool fences the RPC and the
// runtime re-admits under shard 1's fresh epoch. Shard 0 never restarts.
TEST_F(RackFencingTest, HomeShardRestartFencesThenReadmits) {
  tp::ModelChecker checker(&ms_, tp::ModelChecker::OnViolation::kRecord);
  auto caller = ms_.CreateContext(ddc::Pool::kCompute);
  inj_.ScheduleCrashRestart(caller->now() + 100, /*down_for=*/200,
                            /*node=*/1);

  const Status st = Touch(*caller, data1_, /*home=*/1);
  EXPECT_TRUE(st.ok()) << st;
  EXPECT_EQ(runtime_.fenced_rpcs(), 1u);
  EXPECT_EQ(caller->metrics().fenced_rpcs, 1u);
  EXPECT_EQ(ms_.pool_epoch(1), 2u);
  EXPECT_EQ(ms_.pool_epoch(0), 1u);
  EXPECT_EQ(runtime_.last_breakdown().Total(), caller->now());
  EXPECT_EQ(checker.Finish(), 0u);
}

// Skipped fencing on a sharded rack is caught by the checker at the session
// the stale lease admits, keyed to the home shard's epoch.
TEST_F(RackFencingTest, SkipFencingOnShardOneIsCaught) {
  ms_.set_protocol_mutation(ddc::ProtocolMutation::kSkipFencing);
  tp::ModelChecker checker(&ms_, tp::ModelChecker::OnViolation::kRecord);
  auto caller = ms_.CreateContext(ddc::Pool::kCompute);
  inj_.ScheduleCrashRestart(caller->now() + 100, /*down_for=*/200,
                            /*node=*/1);

  const Status st = Touch(*caller, data1_, /*home=*/1);
  EXPECT_TRUE(st.ok()) << st;
  EXPECT_EQ(runtime_.fenced_rpcs(), 0u);
  EXPECT_GT(checker.Finish(), 0u);
}

}  // namespace
}  // namespace teleport
