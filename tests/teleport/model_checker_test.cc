#include "teleport/model_checker.h"

#include <cstdint>
#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "ddc/memory_system.h"
#include "sim/coop_task.h"
#include "sim/explorer.h"
#include "sim/interleaver.h"

namespace teleport::tp {
namespace {

using ddc::CoherenceMode;
using ddc::DdcConfig;
using ddc::MemorySystem;
using ddc::Perm;
using ddc::Platform;
using ddc::Pool;
using ddc::ProtocolMutation;
using ddc::VAddr;

constexpr uint64_t kPage = 4096;

DdcConfig SmallConfig() {
  DdcConfig c;
  c.platform = Platform::kBaseDdc;
  c.compute_cache_bytes = 16 * kPage;
  c.memory_pool_bytes = 1024 * kPage;
  return c;
}

// --- Checker on straight-line protocol flows ---------------------------------

class ModelCheckerTest : public ::testing::Test {
 protected:
  ModelCheckerTest()
      : ms_(SmallConfig(), sim::CostParams::Default(), 16 << 20),
        base_(ms_.space().Alloc(64 * kPage, "data")) {
    ms_.SeedData();
  }

  VAddr PageAddr(int p) const { return base_ + static_cast<VAddr>(p) * kPage; }

  MemorySystem ms_;
  VAddr base_;
};

TEST_F(ModelCheckerTest, CleanMesiFlowHasZeroViolations) {
  ModelChecker checker(&ms_);
  auto cc = ms_.CreateContext(Pool::kCompute);
  auto mc = ms_.CreateContext(Pool::kMemory);
  cc->Store<int64_t>(PageAddr(0), 77);  // dirty in compute
  cc->Load<int64_t>(PageAddr(1));       // read-only in compute
  ms_.BeginPushdownSession(CoherenceMode::kMesi);
  mc->Store<int64_t>(PageAddr(0), 78);  // page-return + invalidate
  mc->Load<int64_t>(PageAddr(1));       // shared read
  mc->Store<int64_t>(PageAddr(2), 79);  // uncontended temp write
  cc->Load<int64_t>(PageAddr(0));       // compute refetches latest
  ms_.EndPushdownSession();
  EXPECT_GT(checker.steps(), 0u);
  EXPECT_EQ(checker.Finish(), 0u);
  EXPECT_TRUE(checker.ok());
}

TEST_F(ModelCheckerTest, CleanFlowsAcrossAllModes) {
  for (const CoherenceMode mode :
       {CoherenceMode::kMesi, CoherenceMode::kPso, CoherenceMode::kWeakOrdering,
        CoherenceMode::kNone}) {
    MemorySystem ms(SmallConfig(), sim::CostParams::Default(), 16 << 20);
    const VAddr base = ms.space().Alloc(32 * kPage, "d");
    ms.SeedData();
    ModelChecker checker(&ms);
    auto cc = ms.CreateContext(Pool::kCompute);
    auto mc = ms.CreateContext(Pool::kMemory);
    cc->Store<int64_t>(base, 1);
    ms.BeginPushdownSession(mode);
    mc->Store<int64_t>(base, 2);
    mc->Store<int64_t>(base + kPage, 3);
    cc->Store<int64_t>(base + 2 * kPage, 4);
    if (mode != CoherenceMode::kNone) cc->Load<int64_t>(base);
    ms.EndPushdownSession();
    EXPECT_EQ(checker.Finish(), 0u)
        << "mode " << ddc::CoherenceModeToString(mode);
  }
}

TEST_F(ModelCheckerTest, SyncmemAndEagerFlushPassTheChecker) {
  ModelChecker checker(&ms_);
  auto cc = ms_.CreateContext(Pool::kCompute);
  for (int p = 0; p < 8; ++p) cc->Store<int64_t>(PageAddr(p), p);
  ms_.Syncmem(*cc, PageAddr(0), 4 * kPage);  // partial clean flush
  ms_.FlushAllCache(*cc, /*drop=*/true);     // eager strawman
  ms_.BulkRefetch(*cc, 4);
  cc->Load<int64_t>(PageAddr(0));
  EXPECT_EQ(checker.Finish(), 0u);
}

TEST_F(ModelCheckerTest, SkipInvalidationMutationIsCaught) {
  ms_.set_protocol_mutation(ProtocolMutation::kSkipInvalidation);
  ModelChecker checker(&ms_, ModelChecker::OnViolation::kRecord);
  auto cc = ms_.CreateContext(Pool::kCompute);
  ms_.BeginPushdownSession(CoherenceMode::kMesi);
  // Page 0 is uncached, so the temp context maps it writable; the compute
  // write must invalidate that mapping — the mutation drops the message.
  cc->Store<int64_t>(PageAddr(0), 5);
  ms_.EndPushdownSession();
  EXPECT_GT(checker.Finish(), 0u);
  EXPECT_FALSE(checker.ok());
}

TEST_F(ModelCheckerTest, SkipTlbShootdownMutationIsCaught) {
  // The mutation suppresses the translation-epoch bump that every protocol
  // transition owes the extent fast path's cached page pins. The checker
  // judges the shootdown obligation from its own model (a coherence fault
  // must bump; a plain hit need not), so the missing bump is observable.
  ms_.set_protocol_mutation(ProtocolMutation::kSkipTlbShootdown);
  ModelChecker checker(&ms_, ModelChecker::OnViolation::kRecord);
  auto cc = ms_.CreateContext(Pool::kCompute);
  cc->Load<int64_t>(PageAddr(0));      // read fault: shootdown owed
  cc->Store<int64_t>(PageAddr(0), 1);  // R->W upgrade: shootdown owed
  cc->Load<int64_t>(PageAddr(1));      // another fault, plus its eviction-
  cc->Load<int64_t>(PageAddr(2));      // free cache inserts
  EXPECT_GT(checker.Finish(), 0u);
  EXPECT_FALSE(checker.ok());
}

TEST_F(ModelCheckerTest, ShootdownInvariantHoldsOnCleanRuns) {
  // Same flow, no mutation: every transition bumps the epoch and the
  // checker's invariant #5 stays quiet (hits carry no obligation).
  ModelChecker checker(&ms_);
  auto cc = ms_.CreateContext(Pool::kCompute);
  cc->Load<int64_t>(PageAddr(0));
  cc->Load<int64_t>(PageAddr(0) + 8);  // plain hit: no bump owed
  cc->Store<int64_t>(PageAddr(0), 1);
  ms_.BeginPushdownSession(CoherenceMode::kMesi);
  auto mc = ms_.CreateContext(Pool::kMemory);
  mc->Store<int64_t>(PageAddr(0), 2);  // page return + invalidate
  ms_.EndPushdownSession();
  EXPECT_EQ(checker.Finish(), 0u);
}

// --- Exhaustive exploration of a 2-task coherence scenario -------------------

/// A compute-side thread and a pushed-down (memory-side) thread race over
/// two shared pages under an active kMesi session, each performing two
/// single-word accesses. With a CoopTask quantum of one access, each task
/// takes exactly 3 scheduler steps, giving a C(6,3) = 20 schedule space.
class RaceScenario : public sim::ExplorationScenario {
 public:
  struct Outcome {
    std::vector<uint32_t> trace;
    uint64_t violations = 0;
    uint64_t first_violation_step = 0;
  };

  RaceScenario(ProtocolMutation mutation, std::vector<Outcome>* outcomes)
      : ms_(SmallConfig(), sim::CostParams::Default(), 16 << 20),
        base_(ms_.space().Alloc(16 * kPage, "d")) {
    ms_.SeedData();
    ms_.set_protocol_mutation(mutation);
    compute_ = ms_.CreateContext(Pool::kCompute);
    memory_ = ms_.CreateContext(Pool::kMemory);
    outcomes_ = outcomes;
    checker_ = std::make_unique<ModelChecker>(
        &ms_, ModelChecker::OnViolation::kRecord);
    ms_.BeginPushdownSession(CoherenceMode::kMesi);
    ta_ = std::make_unique<sim::CoopTask>(
        std::vector<ddc::ExecutionContext*>{compute_.get()}, [this] {
          compute_->Store<uint64_t>(base_, 1);          // dirty page 0
          compute_->Load<uint64_t>(base_ + kPage);      // read page 1
        });
    tb_ = std::make_unique<sim::CoopTask>(
        std::vector<ddc::ExecutionContext*>{memory_.get()}, [this] {
          memory_->Store<uint64_t>(base_ + kPage, 2);   // write page 1
          memory_->Load<uint64_t>(base_);               // read page 0
        });
  }

  std::vector<sim::Task*> tasks() override { return {ta_.get(), tb_.get()}; }

  void OnComplete(const std::vector<uint32_t>& trace) override {
    ms_.EndPushdownSession();
    const uint64_t v = checker_->Finish();
    if (outcomes_ != nullptr) {
      Outcome o;
      o.trace = trace;
      o.violations = v;
      if (v > 0) o.first_violation_step = checker_->violations()[0].step;
      outcomes_->push_back(o);
    }
  }

  const ModelChecker& checker() const { return *checker_; }
  MemorySystem& ms() { return ms_; }

 private:
  MemorySystem ms_;
  VAddr base_;
  std::unique_ptr<ddc::ExecutionContext> compute_;
  std::unique_ptr<ddc::ExecutionContext> memory_;
  std::unique_ptr<ModelChecker> checker_;
  std::vector<Outcome>* outcomes_ = nullptr;
  // Tasks last: their destructors unwind the parked bodies, which still
  // reference the contexts and memory system above.
  std::unique_ptr<sim::CoopTask> ta_;
  std::unique_ptr<sim::CoopTask> tb_;
};

TEST(RaceExplorationTest, AllInterleavingsOfCleanProtocolPassTheChecker) {
  std::vector<RaceScenario::Outcome> outcomes;
  sim::DfsExplorer::Options opts;
  opts.max_steps = 16;
  const sim::DfsExplorer::Stats stats = sim::DfsExplorer::Explore(
      [&outcomes] {
        return std::make_unique<RaceScenario>(ProtocolMutation::kNone,
                                              &outcomes);
      },
      opts);
  // Two tasks x 3 steps each: the full C(6,3) lattice of interleavings.
  EXPECT_EQ(stats.schedules_run, 20u);
  EXPECT_GT(stats.schedules_run, 1u);
  EXPECT_FALSE(stats.truncated);
  ASSERT_EQ(outcomes.size(), 20u);
  for (const auto& o : outcomes) {
    EXPECT_EQ(o.violations, 0u) << "schedule " << sim::TraceToString(o.trace);
  }
}

TEST(RaceExplorationTest, SkipPageReturnMutationCaughtAndReplayable) {
  std::vector<RaceScenario::Outcome> outcomes;
  sim::DfsExplorer::Options opts;
  opts.max_steps = 16;
  const sim::DfsExplorer::Stats stats = sim::DfsExplorer::Explore(
      [&outcomes] {
        return std::make_unique<RaceScenario>(ProtocolMutation::kSkipPageReturn,
                                              &outcomes);
      },
      opts);
  EXPECT_EQ(stats.schedules_run, 20u);
  ASSERT_EQ(outcomes.size(), 20u);

  // The planted bug (stale pool read: the dirty compute page never rides
  // back) is schedule-dependent: it needs the compute write to page 0 to
  // land before the memory-side read of page 0.
  const RaceScenario::Outcome* bad = nullptr;
  uint64_t clean = 0;
  for (const auto& o : outcomes) {
    if (o.violations > 0) {
      if (bad == nullptr) bad = &o;
    } else {
      ++clean;
    }
  }
  ASSERT_NE(bad, nullptr) << "mutation not caught by any schedule";
  EXPECT_GT(clean, 0u) << "bug should be schedule-dependent, not universal";

  // The dumped trace is a reproducer: replaying it deterministically
  // re-triggers the violation at the same protocol step.
  RaceScenario replay_scenario(ProtocolMutation::kSkipPageReturn, nullptr);
  sim::ReplaySchedule replay(bad->trace);
  sim::Interleaver il;
  for (sim::Task* t : replay_scenario.tasks()) il.Add(t);
  il.set_schedule(&replay);
  il.Run();
  replay_scenario.ms().EndPushdownSession();
  EXPECT_EQ(replay.divergences(), 0u);
  const auto& violations = replay_scenario.checker().violations();
  ASSERT_FALSE(violations.empty())
      << "replay of " << sim::TraceToString(bad->trace)
      << " did not reproduce the violation";
  EXPECT_EQ(violations[0].step, bad->first_violation_step);
}

}  // namespace
}  // namespace teleport::tp
