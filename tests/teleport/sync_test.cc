#include <cstdint>

#include <gtest/gtest.h>

#include "teleport/model_checker.h"
#include "teleport/pushdown.h"

namespace teleport::tp {
namespace {

using ddc::CoherenceMode;
using ddc::DdcConfig;
using ddc::ExecutionContext;
using ddc::MemorySystem;
using ddc::Platform;
using ddc::Pool;
using ddc::VAddr;

constexpr uint64_t kPage = 4096;

DdcConfig Config() {
  DdcConfig c;
  c.platform = Platform::kBaseDdc;
  c.compute_cache_bytes = 32 * kPage;
  c.memory_pool_bytes = 4096 * kPage;
  return c;
}

class SyncTest : public ::testing::Test {
 protected:
  SyncTest()
      : ms_(Config(), sim::CostParams::Default(), 64 << 20),
        checker_(&ms_, ModelChecker::OnViolation::kRecord) {}

  void TearDown() override { EXPECT_EQ(checker_.Finish(), 0u); }

  VAddr MakeDirtyPages(ExecutionContext& ctx, int pages) {
    const VAddr a = ms_.space().Alloc(static_cast<uint64_t>(pages) * kPage,
                                      "dirty");
    for (int p = 0; p < pages; ++p) {
      ctx.Store<int64_t>(a + static_cast<VAddr>(p) * kPage, p);
    }
    return a;
  }

  MemorySystem ms_;
  ModelChecker checker_;
};

TEST_F(SyncTest, SyncmemFlushesOnlyDirtyPagesInRange) {
  auto ctx = ms_.CreateContext(Pool::kCompute);
  const VAddr a = MakeDirtyPages(*ctx, 8);
  // Flush pages 2..3 only.
  ms_.Syncmem(*ctx, a + 2 * kPage, 2 * kPage);
  EXPECT_EQ(ctx->metrics().syncmem_pages, 2u);
  EXPECT_EQ(ctx->metrics().bytes_to_memory_pool, 2 * kPage);
  EXPECT_FALSE(ms_.compute_dirty(ms_.space().PageOf(a + 2 * kPage)));
  EXPECT_TRUE(ms_.compute_dirty(ms_.space().PageOf(a + 4 * kPage)));
  // Flushed pages stay cached, read-only.
  EXPECT_EQ(ms_.compute_perm(ms_.space().PageOf(a + 2 * kPage)),
            ddc::Perm::kRead);
}

TEST_F(SyncTest, SyncmemIsIdempotent) {
  auto ctx = ms_.CreateContext(Pool::kCompute);
  const VAddr a = MakeDirtyPages(*ctx, 4);
  ms_.Syncmem(*ctx, a, 4 * kPage);
  const uint64_t bytes = ctx->metrics().bytes_to_memory_pool;
  ms_.Syncmem(*ctx, a, 4 * kPage);  // nothing dirty anymore
  EXPECT_EQ(ctx->metrics().bytes_to_memory_pool, bytes);
}

TEST_F(SyncTest, FlushAllCacheMovesEverythingAndDrops) {
  auto ctx = ms_.CreateContext(Pool::kCompute);
  const VAddr a = MakeDirtyPages(*ctx, 10);
  const uint64_t moved = ms_.FlushAllCache(*ctx, /*drop=*/true);
  EXPECT_EQ(moved, 10u);
  EXPECT_EQ(ms_.cache_pages_used(), 0u);
  for (int p = 0; p < 10; ++p) {
    EXPECT_TRUE(ms_.in_memory_pool(ms_.space().PageOf(a + p * kPage)));
  }
}

TEST_F(SyncTest, FlushRangeLeavesOtherPagesCached) {
  auto ctx = ms_.CreateContext(Pool::kCompute);
  const VAddr a = MakeDirtyPages(*ctx, 10);
  ms_.FlushRange(*ctx, a, 5 * kPage, /*drop=*/true);
  EXPECT_EQ(ms_.cache_pages_used(), 5u);
  EXPECT_EQ(ms_.compute_perm(ms_.space().PageOf(a)), ddc::Perm::kNone);
  EXPECT_NE(ms_.compute_perm(ms_.space().PageOf(a + 6 * kPage)),
            ddc::Perm::kNone);
}

TEST_F(SyncTest, BulkRefetchRestoresFlushedPagesClean) {
  auto ctx = ms_.CreateContext(Pool::kCompute);
  const VAddr a = MakeDirtyPages(*ctx, 6);
  const uint64_t moved = ms_.FlushAllCache(*ctx, /*drop=*/true);
  ms_.BulkRefetch(*ctx, moved);
  EXPECT_EQ(ms_.cache_pages_used(), 6u);
  EXPECT_EQ(ms_.compute_perm(ms_.space().PageOf(a)), ddc::Perm::kRead);
  EXPECT_FALSE(ms_.compute_dirty(ms_.space().PageOf(a)));
}

TEST_F(SyncTest, EagerStrategyPaysUpfrontOnDemandDoesNot) {
  // Fig 20: eager sync moves the whole cache before and after; on-demand
  // moves nothing up front. Compare pre/post phases of the breakdown.
  auto run = [&](SyncStrategy sync, PushdownBreakdown* bd) {
    MemorySystem ms(Config(), sim::CostParams::Default(), 64 << 20);
    ModelChecker checker(&ms, ModelChecker::OnViolation::kRecord);
    PushdownRuntime rt(&ms);
    auto ctx = ms.CreateContext(Pool::kCompute);
    const VAddr a = ms.space().Alloc(16 * kPage, "d");
    for (int p = 0; p < 16; ++p) {
      ctx->Store<int64_t>(a + static_cast<VAddr>(p) * kPage, p);
    }
    PushdownFlags flags;
    flags.sync = sync;
    Status st = rt.Call(
        *ctx,
        [&](ExecutionContext& mc) {
          mc.Load<int64_t>(a);
          return Status::OK();
        },
        flags);
    ASSERT_TRUE(st.ok());
    *bd = rt.last_breakdown();
    EXPECT_EQ(checker.Finish(), 0u);
  };
  PushdownBreakdown eager, on_demand;
  run(SyncStrategy::kEager, &eager);
  run(SyncStrategy::kOnDemand, &on_demand);
  EXPECT_GT(eager.pre_sync_ns, 10 * on_demand.pre_sync_ns);
  EXPECT_GT(eager.post_sync_ns, on_demand.post_sync_ns);
  // On-demand pays more in context setup (per-PTE permission checks, §7.5).
  EXPECT_GT(on_demand.context_setup_ns, eager.context_setup_ns);
  // And overall, on-demand wins by a wide margin (0.3s vs 3.5s in Fig 20).
  EXPECT_LT(on_demand.Total(), eager.Total());
}

TEST_F(SyncTest, EagerRangeFlushesOnlyTheRange) {
  PushdownRuntime rt(&ms_);
  auto ctx = ms_.CreateContext(Pool::kCompute);
  const VAddr a = MakeDirtyPages(*ctx, 8);
  PushdownFlags flags;
  flags.sync = SyncStrategy::kEagerRange;
  flags.sync_addr = a;
  flags.sync_len = 4 * kPage;
  ASSERT_TRUE(rt.Call(
                    *ctx,
                    [&](ExecutionContext& mc) {
                      mc.Load<int64_t>(a);
                      return Status::OK();
                    },
                    flags)
                  .ok());
  // The other 4 pages survived in the cache.
  EXPECT_EQ(ms_.cache_pages_used(), 4u);
}

TEST_F(SyncTest, DataCorrectAcrossEveryStrategy) {
  for (SyncStrategy sync :
       {SyncStrategy::kOnDemand, SyncStrategy::kEager,
        SyncStrategy::kEagerRange}) {
    MemorySystem ms(Config(), sim::CostParams::Default(), 64 << 20);
    ModelChecker checker(&ms, ModelChecker::OnViolation::kRecord);
    PushdownRuntime rt(&ms);
    auto ctx = ms.CreateContext(Pool::kCompute);
    const VAddr a = ms.space().Alloc(4 * kPage, "d");
    for (int i = 0; i < 100; ++i) ctx->Store<int64_t>(a + i * 8, i);
    PushdownFlags flags;
    flags.sync = sync;
    flags.sync_addr = a;
    flags.sync_len = 4 * kPage;
    int64_t sum = 0;
    ASSERT_TRUE(rt.Call(
                      *ctx,
                      [&](ExecutionContext& mc) {
                        for (int i = 0; i < 100; ++i) {
                          sum += mc.Load<int64_t>(a + i * 8);
                        }
                        return Status::OK();
                      },
                      flags)
                    .ok());
    EXPECT_EQ(sum, 4950) << SyncStrategyToString(sync);
    // Caller sees memory-side writes after return, too.
    ASSERT_TRUE(rt.Call(
                      *ctx,
                      [&](ExecutionContext& mc) {
                        mc.Store<int64_t>(a, 1000);
                        return Status::OK();
                      },
                      flags)
                    .ok());
    EXPECT_EQ(ctx->Load<int64_t>(a), 1000) << SyncStrategyToString(sync);
    EXPECT_EQ(checker.Finish(), 0u) << SyncStrategyToString(sync);
  }
}

TEST_F(SyncTest, CoherenceModePassedThroughFlags) {
  PushdownRuntime rt(&ms_);
  auto ctx = ms_.CreateContext(Pool::kCompute);
  const VAddr a = MakeDirtyPages(*ctx, 2);
  PushdownFlags flags;
  flags.coherence = CoherenceMode::kPso;
  ASSERT_TRUE(rt.Call(
                    *ctx,
                    [&](ExecutionContext& mc) {
                      EXPECT_EQ(ms_.coherence_mode(), CoherenceMode::kPso);
                      mc.Store<int64_t>(a, 1);
                      return Status::OK();
                    },
                    flags)
                  .ok());
  // PSO write against the dirty compute copy downgraded rather than evicted.
  EXPECT_EQ(ms_.compute_perm(ms_.space().PageOf(a)), ddc::Perm::kRead);
}

}  // namespace
}  // namespace teleport::tp
