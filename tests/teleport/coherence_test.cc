#include <cstdint>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "ddc/memory_system.h"
#include "teleport/model_checker.h"

namespace teleport::ddc {
namespace {

constexpr uint64_t kPage = 4096;

class CoherenceTest : public ::testing::Test {
 protected:
  CoherenceTest()
      : ms_(Config(), sim::CostParams::Default(), 16 << 20),
        base_(ms_.space().Alloc(64 * kPage, "data")),
        checker_(&ms_, tp::ModelChecker::OnViolation::kRecord) {
    ms_.SeedData();
  }

  void TearDown() override { EXPECT_EQ(checker_.Finish(), 0u); }

  static DdcConfig Config() {
    DdcConfig c;
    c.platform = Platform::kBaseDdc;
    c.compute_cache_bytes = 16 * kPage;
    c.memory_pool_bytes = 1024 * kPage;
    return c;
  }

  VAddr PageAddr(int p) const { return base_ + static_cast<VAddr>(p) * kPage; }

  MemorySystem ms_;
  VAddr base_;
  tp::ModelChecker checker_;
};

TEST_F(CoherenceTest, Fig8TempTableConstruction) {
  auto cc = ms_.CreateContext(Pool::kCompute);
  cc->Store<int64_t>(PageAddr(0), 1);  // compute W
  cc->Load<int64_t>(PageAddr(1));      // compute R
  //(page 2 stays uncached)
  ms_.BeginPushdownSession(CoherenceMode::kMesi);
  EXPECT_EQ(ms_.temp_perm(ms_.space().PageOf(PageAddr(0))), Perm::kNone);
  EXPECT_EQ(ms_.temp_perm(ms_.space().PageOf(PageAddr(1))), Perm::kRead);
  EXPECT_EQ(ms_.temp_perm(ms_.space().PageOf(PageAddr(2))), Perm::kWrite);
  ms_.EndPushdownSession();
}

TEST_F(CoherenceTest, MemoryWriteFaultPullsDirtyPageBack) {
  auto cc = ms_.CreateContext(Pool::kCompute);
  cc->Store<int64_t>(PageAddr(0), 77);  // dirty in compute
  ms_.BeginPushdownSession(CoherenceMode::kMesi);
  auto mc = ms_.CreateContext(Pool::kMemory);
  mc->Store<int64_t>(PageAddr(0), 78);
  // The compute copy was dirty: a PageReturn flushed it and the compute
  // entry was invalidated (write request -> evict, Fig 9 line 22).
  EXPECT_EQ(mc->metrics().coherence_page_returns, 1u);
  EXPECT_EQ(mc->metrics().coherence_invalidations, 1u);
  EXPECT_EQ(ms_.compute_perm(ms_.space().PageOf(PageAddr(0))), Perm::kNone);
  EXPECT_EQ(ms_.temp_perm(ms_.space().PageOf(PageAddr(0))), Perm::kWrite);
  ms_.CheckSwmrInvariant();
  ms_.EndPushdownSession();
  EXPECT_EQ(mc->Load<int64_t>(PageAddr(0)), 78);
}

TEST_F(CoherenceTest, MemoryReadFaultDowngradesComputeWriter) {
  auto cc = ms_.CreateContext(Pool::kCompute);
  cc->Store<int64_t>(PageAddr(3), 5);
  ms_.BeginPushdownSession(CoherenceMode::kMesi);
  auto mc = ms_.CreateContext(Pool::kMemory);
  EXPECT_EQ(mc->Load<int64_t>(PageAddr(3)), 5);
  EXPECT_EQ(ms_.compute_perm(ms_.space().PageOf(PageAddr(3))), Perm::kRead);
  EXPECT_EQ(ms_.temp_perm(ms_.space().PageOf(PageAddr(3))), Perm::kRead);
  EXPECT_EQ(mc->metrics().coherence_downgrades, 1u);
  EXPECT_EQ(mc->metrics().coherence_page_returns, 1u);  // dirty data moved
  ms_.CheckSwmrInvariant();
  ms_.EndPushdownSession();
}

TEST_F(CoherenceTest, ComputeWriteFaultInvalidatesTempWriter) {
  ms_.BeginPushdownSession(CoherenceMode::kMesi);
  auto mc = ms_.CreateContext(Pool::kMemory);
  mc->Store<int64_t>(PageAddr(4), 9);  // temp W (page was uncached)
  auto cc = ms_.CreateContext(Pool::kCompute);
  cc->Store<int64_t>(PageAddr(4), 10);
  EXPECT_EQ(ms_.temp_perm(ms_.space().PageOf(PageAddr(4))), Perm::kNone);
  EXPECT_EQ(ms_.compute_perm(ms_.space().PageOf(PageAddr(4))), Perm::kWrite);
  EXPECT_GE(cc->metrics().coherence_messages, 2u);
  ms_.CheckSwmrInvariant();
  ms_.EndPushdownSession();
  EXPECT_EQ(cc->Load<int64_t>(PageAddr(4)), 10);
}

TEST_F(CoherenceTest, ComputeReadFaultDowngradesTempWriter) {
  ms_.BeginPushdownSession(CoherenceMode::kMesi);
  auto mc = ms_.CreateContext(Pool::kMemory);
  mc->Store<int64_t>(PageAddr(5), 13);
  auto cc = ms_.CreateContext(Pool::kCompute);
  EXPECT_EQ(cc->Load<int64_t>(PageAddr(5)), 13);
  EXPECT_EQ(ms_.temp_perm(ms_.space().PageOf(PageAddr(5))), Perm::kRead);
  EXPECT_EQ(ms_.compute_perm(ms_.space().PageOf(PageAddr(5))), Perm::kRead);
  ms_.CheckSwmrInvariant();
  ms_.EndPushdownSession();
}

TEST_F(CoherenceTest, ReadSharingCostsNoCoherenceTraffic) {
  auto cc = ms_.CreateContext(Pool::kCompute);
  cc->Load<int64_t>(PageAddr(6));  // compute R
  ms_.BeginPushdownSession(CoherenceMode::kMesi);
  auto mc = ms_.CreateContext(Pool::kMemory);
  mc->Load<int64_t>(PageAddr(6));  // temp starts R per Fig 8
  EXPECT_EQ(mc->metrics().coherence_messages, 0u);
  ms_.EndPushdownSession();
}

TEST_F(CoherenceTest, PsoDowngradesInsteadOfInvalidating) {
  auto cc = ms_.CreateContext(Pool::kCompute);
  cc->Load<int64_t>(PageAddr(7));  // compute R (clean)
  ms_.BeginPushdownSession(CoherenceMode::kPso);
  auto mc = ms_.CreateContext(Pool::kMemory);
  mc->Store<int64_t>(PageAddr(7), 1);
  // Under PSO the compute copy survives read-only (write propagation
  // relaxed, §4.2).
  EXPECT_EQ(ms_.compute_perm(ms_.space().PageOf(PageAddr(7))), Perm::kRead);
  EXPECT_EQ(mc->metrics().coherence_downgrades, 1u);
  EXPECT_EQ(mc->metrics().coherence_invalidations, 0u);
  ms_.EndPushdownSession();
}

TEST_F(CoherenceTest, WeakOrderingSilencesContendedWrites) {
  auto cc = ms_.CreateContext(Pool::kCompute);
  cc->Load<int64_t>(PageAddr(8));  // both sides will hold R
  ms_.BeginPushdownSession(CoherenceMode::kWeakOrdering);
  auto mc = ms_.CreateContext(Pool::kMemory);
  mc->Store<int64_t>(PageAddr(8), 2);  // temp upgrade: silent
  cc->Store<int64_t>(PageAddr(8), 3);  // compute upgrade: silent
  EXPECT_EQ(mc->metrics().coherence_messages, 0u);
  EXPECT_EQ(cc->metrics().coherence_messages, 0u);
  ms_.EndPushdownSession();
}

TEST_F(CoherenceTest, NoneModeGrantsTempFullAccess) {
  auto cc = ms_.CreateContext(Pool::kCompute);
  cc->Store<int64_t>(PageAddr(9), 4);  // compute W
  ms_.BeginPushdownSession(CoherenceMode::kNone);
  auto mc = ms_.CreateContext(Pool::kMemory);
  mc->Store<int64_t>(PageAddr(9), 5);  // would fault under MESI
  EXPECT_EQ(mc->metrics().coherence_messages, 0u);
  ms_.EndPushdownSession();
}

TEST_F(CoherenceTest, TiebreakFavorsMemoryPool) {
  auto cc = ms_.CreateContext(Pool::kCompute);
  cc->Load<int64_t>(PageAddr(10));  // (R, R) after session start
  ms_.BeginPushdownSession(CoherenceMode::kMesi);
  auto mc = ms_.CreateContext(Pool::kMemory);
  // Line the memory-side upgrade up so its in-flight window overlaps the
  // compute thread's next write on the virtual timeline.
  mc->AdvanceTime(cc->now());
  mc->Store<int64_t>(PageAddr(10), 1);  // memory upgrade, in-flight window
  // A compute write fault that (virtually) races inside the window loses
  // the tiebreak: it completes only after the window plus backoff.
  const Nanos before = cc->now();
  cc->Store<int64_t>(PageAddr(10), 2);
  EXPECT_GE(cc->now(),
            before + ms_.config().tiebreak_backoff_ns);
  ms_.CheckSwmrInvariant();
  ms_.EndPushdownSession();
}

TEST_F(CoherenceTest, EndSessionClearsTempState) {
  ms_.BeginPushdownSession(CoherenceMode::kMesi);
  auto mc = ms_.CreateContext(Pool::kMemory);
  mc->Store<int64_t>(PageAddr(11), 6);
  ms_.EndPushdownSession();
  EXPECT_EQ(ms_.temp_perm(ms_.space().PageOf(PageAddr(11))), Perm::kNone);
  EXPECT_FALSE(ms_.pushdown_active());
}

TEST_F(CoherenceTest, RefcountedConcurrentSessions) {
  ms_.BeginPushdownSession(CoherenceMode::kMesi);
  ms_.BeginPushdownSession(CoherenceMode::kMesi);
  ms_.EndPushdownSession();
  EXPECT_TRUE(ms_.pushdown_active());
  ms_.EndPushdownSession();
  EXPECT_FALSE(ms_.pushdown_active());
}

// Property test: the SWMR invariant holds after every operation of a random
// two-sided access sequence under the default protocol, and both sides
// always observe the latest written value (coherence ≡ correctness).
class SwmrPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SwmrPropertyTest, RandomOpsPreserveSwmrAndData) {
  DdcConfig c;
  c.platform = Platform::kBaseDdc;
  c.compute_cache_bytes = 8 * kPage;
  c.memory_pool_bytes = 256 * kPage;
  MemorySystem ms(c, sim::CostParams::Default(), 4 << 20);
  const VAddr base = ms.space().Alloc(16 * kPage, "d");
  ms.SeedData();
  tp::ModelChecker checker(&ms, tp::ModelChecker::OnViolation::kRecord);
  Rng rng(GetParam());

  auto cc = ms.CreateContext(Pool::kCompute);
  // Warm a random subset of the cache before the session starts.
  for (int i = 0; i < 10; ++i) {
    const VAddr a = base + rng.Uniform(16) * kPage;
    if (rng.Bernoulli(0.5)) {
      cc->Store<int64_t>(a, -1);
    } else {
      cc->Load<int64_t>(a);
    }
  }

  ms.BeginPushdownSession(CoherenceMode::kMesi);
  auto mc = ms.CreateContext(Pool::kMemory);
  int64_t expected[16] = {};
  for (int p = 0; p < 16; ++p) {
    expected[p] = cc->Load<int64_t>(base + static_cast<VAddr>(p) * kPage);
  }
  for (int i = 0; i < 400; ++i) {
    const int p = static_cast<int>(rng.Uniform(16));
    const VAddr a = base + static_cast<VAddr>(p) * kPage;
    const bool memory_side = rng.Bernoulli(0.5);
    ExecutionContext& ctx = memory_side ? *mc : *cc;
    if (rng.Bernoulli(0.4)) {
      const int64_t v = static_cast<int64_t>(rng.Next() >> 1);
      ctx.Store<int64_t>(a, v);
      expected[p] = v;
    } else {
      EXPECT_EQ(ctx.Load<int64_t>(a), expected[p])
          << "stale read on page " << p << " (op " << i << ")";
    }
    ms.CheckSwmrInvariant();
  }
  ms.EndPushdownSession();
  EXPECT_EQ(checker.Finish(), 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SwmrPropertyTest,
                         ::testing::Values(101, 202, 303, 404, 505, 606, 707,
                                           808, 909, 1010));

}  // namespace
}  // namespace teleport::ddc
