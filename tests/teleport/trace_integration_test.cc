// End-to-end checks of the sim::Tracer threading (PR4 tentpole):
//  - a fault-injected Q6 pushdown run yields spans whose per-request child
//    durations sum exactly to the enclosing call span and to the runtime's
//    PushdownBreakdown accounting;
//  - two same-seed fault-injected runs produce byte-identical traces;
//  - attaching a tracer charges zero extra virtual time: answers, clocks,
//    and metrics are bit-identical with and without one.

#include <algorithm>
#include <cstdio>
#include <map>
#include <memory>
#include <string>

#include <gtest/gtest.h>

#include "db/query.h"
#include "net/faults.h"
#include "sim/tracer.h"
#include "teleport/pushdown.h"

namespace teleport::tp {
namespace {

using ddc::ExecutionContext;
using ddc::MemorySystem;
using ddc::Platform;
using ddc::Pool;
using ddc::VAddr;

constexpr uint64_t kPage = 4096;

struct DbDeployment {
  std::unique_ptr<MemorySystem> ms;
  std::unique_ptr<db::TpchDatabase> db;
  std::unique_ptr<ExecutionContext> ctx;
  std::unique_ptr<PushdownRuntime> runtime;
};

DbDeployment MakeDbDeployment() {
  DbDeployment d;
  db::TpchConfig cfg;
  cfg.scale_factor = 0.3;
  ddc::DdcConfig dc;
  dc.platform = Platform::kBaseDdc;
  const uint64_t bytes = db::EstimateTpchBytes(cfg);
  dc.compute_cache_bytes = std::max<uint64_t>(
      16 * kPage, static_cast<uint64_t>(0.05 * static_cast<double>(bytes)));
  dc.memory_pool_bytes = bytes * 8;
  d.ms = std::make_unique<MemorySystem>(dc, sim::CostParams::Default(),
                                        bytes * 8);
  d.db = db::GenerateTpch(d.ms.get(), cfg);
  d.ctx = d.ms->CreateContext(Pool::kCompute);
  d.runtime = std::make_unique<PushdownRuntime>(d.ms.get());
  return d;
}

net::FaultSpec MildlyLossy() {
  net::FaultSpec spec;
  spec.drop_p = 0.25;
  spec.delay_p = 0.05;
  spec.delay_ns = 2 * kMicrosecond;
  return spec;
}

uint64_t CallIdOf(const std::string& args) {
  unsigned long long id = 0;
  EXPECT_EQ(std::sscanf(args.c_str(), "\"call\":%llu", &id), 1) << args;
  return id;
}

// The acceptance cross-check: under fault injection, every pushdown
// request's component spans tile its enclosing "call" span exactly, and
// the call spans together equal the runtime's total breakdown.
TEST(TraceIntegrationTest, FaultInjectedQ6SpansSumToBreakdownTotals) {
  DbDeployment d = MakeDbDeployment();
  net::FaultInjector inj(0xfeedULL);
  inj.SetSpecAll(MildlyLossy());
  d.ms->fabric().set_fault_injector(&inj);
  d.ms->set_retry_seed(11);
  d.runtime->set_retry_seed(12);

  sim::Tracer tracer;
  d.ms->set_tracer(&tracer);

  db::QueryOptions opts;
  opts.runtime = d.runtime.get();
  opts.push_ops = db::DefaultTeleportOps("q6");
  const db::QueryResult r = db::RunQ6(*d.ctx, *d.db, opts);
  ASSERT_GT(d.runtime->completed_calls(), 0u);
  // Faults were actually exercised, so the retry component is live.
  EXPECT_GT(d.runtime->retry_events(), 0u);

  std::map<uint64_t, Nanos> call_total;   // call id -> enclosing span dur
  std::map<uint64_t, Nanos> child_sum;    // call id -> sum of components
  for (const sim::TraceEvent& ev : tracer.events()) {
    if (ev.phase != sim::TraceEvent::Phase::kComplete) continue;
    if (tracer.CatOf(ev) != "pushdown") continue;
    const uint64_t id = CallIdOf(ev.args);
    if (tracer.NameOf(ev) == "call") {
      call_total[id] = ev.dur;
    } else {
      child_sum[id] += ev.dur;
    }
  }
  ASSERT_EQ(call_total.size(), d.runtime->completed_calls());

  Nanos sum_of_calls = 0;
  for (const auto& [id, total] : call_total) {
    ASSERT_TRUE(child_sum.count(id)) << "call " << id << " has no children";
    EXPECT_EQ(child_sum[id], total) << "call " << id;
    sum_of_calls += total;
  }
  EXPECT_EQ(sum_of_calls, d.runtime->total_breakdown().Total());

  // The trace also carries the query's per-operator engine spans.
  EXPECT_NE(tracer.SpanLatency("db", "Selection(shipdate)"), nullptr);
  EXPECT_EQ(tracer.SpanLatency("pushdown", "call")->count(),
            d.runtime->completed_calls());
  (void)r;
}

// A small chaos workload: a few pushdowns under a lossy injector, traced.
std::string ChaosTraceJson(uint64_t seed) {
  ddc::DdcConfig c;
  c.platform = Platform::kBaseDdc;
  c.compute_cache_bytes = 16 * kPage;
  c.memory_pool_bytes = 2048 * kPage;
  MemorySystem ms(c, sim::CostParams::Default(), 32 << 20);
  net::FaultInjector inj(seed);
  net::FaultSpec spec;
  spec.drop_p = 0.25;
  spec.delay_p = 0.1;
  spec.delay_ns = 2 * kMicrosecond;
  inj.SetSpecAll(spec);
  ms.fabric().set_fault_injector(&inj);
  ms.set_retry_seed(seed * 31 + 1);

  sim::Tracer tracer;
  ms.set_tracer(&tracer);

  PushdownRuntime runtime(&ms);
  runtime.set_retry_seed(seed * 31 + 2);
  const VAddr a = ms.space().Alloc(256 * kPage, "d");
  ms.SeedData();
  auto caller = ms.CreateContext(Pool::kCompute);
  for (int call = 0; call < 4; ++call) {
    const Status st = runtime.Call(*caller, [&](ExecutionContext& mc) {
      int64_t local = 0;
      for (uint64_t p = 0; p < 256; ++p) {
        local += mc.Load<int64_t>(a + p * kPage);
        mc.Store<int64_t>(a + p * kPage, local + call);
      }
      return Status::OK();
    });
    TELEPORT_CHECK(st.ok());
  }
  return tracer.ToChromeJson();
}

TEST(TraceIntegrationTest, SameSeedChaosRunsProduceByteIdenticalTraces) {
  const std::string a = ChaosTraceJson(0x5eedULL);
  const std::string b = ChaosTraceJson(0x5eedULL);
  EXPECT_EQ(a, b);
  // Different seeds genuinely perturb the fault schedule (sanity that the
  // equality above is not vacuous).
  EXPECT_NE(a, ChaosTraceJson(0x5eedULL + 1));
}

// Satellite 5 tier-1 assertion: the tracer is a pure observer. Running the
// identical workload with and without one yields bit-identical answers,
// completion times, and metrics ("tracing disabled charges zero extra
// virtual time").
TEST(TraceIntegrationTest, TracerAttachmentChargesZeroExtraVirtualTime) {
  struct Outcome {
    int64_t checksum;
    Nanos total_ns;
    Nanos now;
    std::string metrics;
  };
  auto run = [](bool traced) {
    DbDeployment d = MakeDbDeployment();
    sim::Tracer tracer;
    if (traced) d.ms->set_tracer(&tracer);
    db::QueryOptions opts;
    opts.runtime = d.runtime.get();
    opts.push_ops = db::DefaultTeleportOps("q6");
    const db::QueryResult r = db::RunQ6(*d.ctx, *d.db, opts);
    if (traced) {
      // The traced leg must actually have traced something.
      EXPECT_FALSE(tracer.events().empty());
    }
    return Outcome{r.checksum, r.total_ns, d.ctx->now(),
                   d.ctx->metrics().ToString()};
  };
  const Outcome with = run(true);
  const Outcome without = run(false);
  EXPECT_EQ(with.checksum, without.checksum);
  EXPECT_EQ(with.total_ns, without.total_ns);
  EXPECT_EQ(with.now, without.now);
  EXPECT_EQ(with.metrics, without.metrics);
}

}  // namespace
}  // namespace teleport::tp
