// Graph processing on a DDC: single-source shortest paths with the
// PowerGraph-style GAS engine, Teleporting the data-intensive finalize /
// gather / scatter phases (§5.2).

#include <cstdio>

#include "graph/engine.h"

using namespace teleport;  // NOLINT: example brevity
using graph::GasOptions;
using graph::GasResult;
using graph::Phase;

namespace {

void PrintPhases(const char* label, const GasResult& r) {
  std::printf("%-18s total %8.2f ms  iterations %d  checksum %lld\n", label,
              ToMillis(r.total_ns), r.iterations,
              static_cast<long long>(r.checksum));
  for (const auto& p : r.phases) {
    std::printf("    %-10s %8.2f ms  %7.2f MiB remote  x%llu%s\n",
                std::string(PhaseToString(p.phase)).c_str(),
                ToMillis(p.time_ns),
                static_cast<double>(p.remote_bytes) / (1 << 20),
                static_cast<unsigned long long>(p.invocations),
                p.pushed ? "  [pushed]" : "");
  }
}

}  // namespace

int main() {
  graph::GraphConfig gc;
  gc.vertices = 50'000;
  gc.avg_degree = 12;
  const uint64_t bytes = graph::EstimateGraphBytes(gc);
  std::printf("Generating power-law graph: %llu vertices, ~%llu edges\n\n",
              static_cast<unsigned long long>(gc.vertices),
              static_cast<unsigned long long>(gc.vertices * gc.avg_degree));

  auto deploy = [&](ddc::Platform platform) {
    ddc::DdcConfig dc;
    dc.platform = platform;
    dc.compute_cache_bytes = bytes / 16;
    dc.memory_pool_bytes = bytes * 16;
    return std::make_unique<ddc::MemorySystem>(
        dc, sim::CostParams::Default(), bytes * 16);
  };

  // Monolithic reference.
  auto local_ms = deploy(ddc::Platform::kLocal);
  const graph::Graph g_local = graph::GenerateGraph(local_ms.get(), gc);
  auto local_ctx = local_ms->CreateContext(ddc::Pool::kCompute);
  const GasResult local = RunSssp(*local_ctx, g_local, GasOptions{});
  PrintPhases("SSSP / Linux", local);

  // Base DDC.
  auto ddc_ms = deploy(ddc::Platform::kBaseDdc);
  const graph::Graph g_ddc = graph::GenerateGraph(ddc_ms.get(), gc);
  auto ddc_ctx = ddc_ms->CreateContext(ddc::Pool::kCompute);
  const GasResult base = RunSssp(*ddc_ctx, g_ddc, GasOptions{});
  PrintPhases("SSSP / base DDC", base);

  // TELEPORT.
  auto tele_ms = deploy(ddc::Platform::kBaseDdc);
  const graph::Graph g_tele = graph::GenerateGraph(tele_ms.get(), gc);
  auto tele_ctx = tele_ms->CreateContext(ddc::Pool::kCompute);
  tp::PushdownRuntime runtime(tele_ms.get());
  GasOptions opts;
  opts.runtime = &runtime;
  opts.push_phases = graph::DefaultTeleportPhases();
  const GasResult tele = RunSssp(*tele_ctx, g_tele, opts);
  PrintPhases("SSSP / TELEPORT", tele);

  if (local.checksum != base.checksum || local.checksum != tele.checksum) {
    std::fprintf(stderr, "distance checksums diverged across platforms!\n");
    return 1;
  }
  std::printf("\nspeedup over base DDC: %.1fx  (cost of scaling %.1fx)\n",
              static_cast<double>(base.total_ns) /
                  static_cast<double>(tele.total_ns),
              static_cast<double>(tele.total_ns) /
                  static_cast<double>(local.total_ns));
  return 0;
}
