// MapReduce on a DDC: Phoenix-style WordCount and Grep over a Zipfian text
// corpus, Teleporting the map-shuffle sub-phase that dominates map time in
// a DDC (§5.3).

#include <cstdio>

#include "mr/engine.h"

using namespace teleport;  // NOLINT: example brevity
using mr::MrOptions;
using mr::MrPhase;
using mr::MrResult;

namespace {

void PrintPhases(const char* label, const MrResult& r) {
  std::printf("%-22s total %8.2f ms  pairs %llu  distinct %llu\n", label,
              ToMillis(r.total_ns),
              static_cast<unsigned long long>(r.pairs),
              static_cast<unsigned long long>(r.distinct_keys));
  for (const auto& p : r.phases) {
    std::printf("    %-11s %8.2f ms  %7.2f MiB remote  x%llu%s\n",
                std::string(MrPhaseToString(p.phase)).c_str(),
                ToMillis(p.time_ns),
                static_cast<double>(p.remote_bytes) / (1 << 20),
                static_cast<unsigned long long>(p.invocations),
                p.pushed ? "  [pushed]" : "");
  }
}

struct Deployment {
  std::unique_ptr<ddc::MemorySystem> ms;
  mr::TextCorpus corpus;
  std::unique_ptr<ddc::ExecutionContext> ctx;
  std::unique_ptr<tp::PushdownRuntime> runtime;
};

Deployment Deploy(ddc::Platform platform) {
  Deployment d;
  mr::TextConfig tc;
  tc.bytes = 4 << 20;
  ddc::DdcConfig dc;
  dc.platform = platform;
  dc.compute_cache_bytes = tc.bytes / 16;
  dc.memory_pool_bytes = static_cast<uint64_t>(tc.bytes) * 64;
  d.ms = std::make_unique<ddc::MemorySystem>(dc, sim::CostParams::Default(),
                                             static_cast<uint64_t>(tc.bytes) *
                                                 64);
  d.corpus = mr::GenerateText(d.ms.get(), tc);
  d.ctx = d.ms->CreateContext(ddc::Pool::kCompute);
  if (platform == ddc::Platform::kBaseDdc) {
    d.runtime = std::make_unique<tp::PushdownRuntime>(d.ms.get());
  }
  return d;
}

}  // namespace

int main() {
  std::printf("Generating 4 MiB Zipfian corpus...\n\n");

  auto local = Deploy(ddc::Platform::kLocal);
  const MrResult wc_local = RunWordCount(*local.ctx, local.corpus, {});
  PrintPhases("WordCount / Linux", wc_local);

  auto base = Deploy(ddc::Platform::kBaseDdc);
  const MrResult wc_ddc = RunWordCount(*base.ctx, base.corpus, {});
  PrintPhases("WordCount / base DDC", wc_ddc);

  auto tele = Deploy(ddc::Platform::kBaseDdc);
  MrOptions opts;
  opts.runtime = tele.runtime.get();
  opts.push_phases = mr::DefaultTeleportPhases();
  const MrResult wc_tele = RunWordCount(*tele.ctx, tele.corpus, opts);
  PrintPhases("WordCount / TELEPORT", wc_tele);

  if (wc_local.checksum != wc_ddc.checksum ||
      wc_local.checksum != wc_tele.checksum) {
    std::fprintf(stderr, "word counts diverged across platforms!\n");
    return 1;
  }
  std::printf("\nWordCount speedup over base DDC: %.1fx\n\n",
              static_cast<double>(wc_ddc.total_ns) /
                  static_cast<double>(wc_tele.total_ns));

  // Grep with the same pipeline.
  auto grep_local = Deploy(ddc::Platform::kLocal);
  const MrResult g_local =
      RunGrep(*grep_local.ctx, grep_local.corpus, "wab", {});
  auto grep_tele = Deploy(ddc::Platform::kBaseDdc);
  MrOptions gopts;
  gopts.runtime = grep_tele.runtime.get();
  gopts.push_phases = mr::DefaultTeleportPhases();
  const MrResult g_tele =
      RunGrep(*grep_tele.ctx, grep_tele.corpus, "wab", gopts);
  PrintPhases("Grep 'wab' / Linux", g_local);
  PrintPhases("Grep 'wab' / TELEPORT", g_tele);
  std::printf("\nGrep matching lines: %llu\n",
              static_cast<unsigned long long>(g_local.pairs));
  return g_local.checksum == g_tele.checksum ? 0 : 1;
}
