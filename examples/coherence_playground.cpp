// Coherence playground: the §4 protocol up close. Walks through the Fig-8
// temporary-context setup, watches individual fault transitions, compares
// the §4.2 relaxations under contention, and demonstrates syncmem, the
// cost-based pushdown advisor, and failure handling.

#include <cstdio>

#include "db/advisor.h"
#include "db/query.h"
#include "ddc/memory_system.h"
#include "teleport/pushdown.h"

using namespace teleport;  // NOLINT: example brevity

namespace {

const char* PermName(ddc::Perm p) {
  switch (p) {
    case ddc::Perm::kNone:
      return "-";
    case ddc::Perm::kRead:
      return "R";
    case ddc::Perm::kWrite:
      return "W";
  }
  return "?";
}

void ShowPage(ddc::MemorySystem& ms, int page, const char* what) {
  std::printf("  %-44s compute=%s temp=%s\n", what,
              PermName(ms.compute_perm(page)), PermName(ms.temp_perm(page)));
}

}  // namespace

int main() {
  constexpr uint64_t kPage = 4096;
  ddc::DdcConfig config;
  config.platform = ddc::Platform::kBaseDdc;
  config.compute_cache_bytes = 64 * kPage;
  config.memory_pool_bytes = 64 << 20;
  ddc::MemorySystem ms(config, sim::CostParams::Default(), 32 << 20);
  const ddc::VAddr data = ms.space().Alloc(8 * kPage, "pages");
  ms.SeedData();

  // --- Act 1: the Fig 8 temporary page table -----------------------------
  std::printf("Act 1: temporary-context construction (Fig 8)\n");
  auto cc = ms.CreateContext(ddc::Pool::kCompute);
  cc->Store<int64_t>(data, 1);             // page 0: compute-writable
  (void)cc->Load<int64_t>(data + kPage);   // page 1: compute-read-only
  ms.BeginPushdownSession(ddc::CoherenceMode::kMesi);
  ShowPage(ms, 0, "written page (compute W -> temp absent)");
  ShowPage(ms, 1, "read page    (compute R -> temp R)");
  ShowPage(ms, 2, "uncached page (temp gets full access)");

  // --- Act 2: online faults (Fig 9) ---------------------------------------
  std::printf("\nAct 2: online synchronization (Fig 9)\n");
  auto mc = ms.CreateContext(ddc::Pool::kMemory);
  (void)mc->Load<int64_t>(data);  // memory read of the dirty compute page
  ShowPage(ms, 0, "after memory-side read (downgrade + flush)");
  mc->Store<int64_t>(data + kPage, 7);  // memory write of the shared page
  ShowPage(ms, 1, "after memory-side write (compute evicted)");
  cc->Store<int64_t>(data + 2 * kPage, 9);  // compute write of temp-W page
  ShowPage(ms, 2, "after compute-side write (temp invalidated)");
  std::printf("  coherence messages so far: %llu (compute) + %llu (memory)\n",
              static_cast<unsigned long long>(
                  cc->metrics().coherence_messages),
              static_cast<unsigned long long>(
                  mc->metrics().coherence_messages));
  ms.CheckSwmrInvariant();
  std::printf("  SWMR invariant verified across all pages.\n");
  ms.EndPushdownSession();

  // --- Act 3: syncmem ------------------------------------------------------
  std::printf("\nAct 3: manual synchronization with syncmem (S4.2)\n");
  cc->Store<int64_t>(data + 3 * kPage, 5);
  const auto before = cc->metrics().syncmem_pages;
  ms.Syncmem(*cc, data + 3 * kPage, kPage);
  std::printf("  flushed %llu dirty page(s); page 3 now clean read-only "
              "(%s)\n",
              static_cast<unsigned long long>(cc->metrics().syncmem_pages -
                                              before),
              PermName(ms.compute_perm(3)));

  // --- Act 4: the advisor on a real query ----------------------------------
  std::printf("\nAct 4: cost-based pushdown advice on TPC-H Q6 (S5.1)\n");
  db::TpchConfig tcfg;
  tcfg.scale_factor = 1.0;
  ddc::DdcConfig qc;
  qc.platform = ddc::Platform::kBaseDdc;
  const uint64_t bytes = db::EstimateTpchBytes(tcfg);
  qc.compute_cache_bytes = bytes / 50;
  qc.memory_pool_bytes = bytes * 8;
  ddc::MemorySystem qms(qc, sim::CostParams::Default(), bytes * 12);
  auto database = db::GenerateTpch(&qms, tcfg);
  auto qctx = qms.CreateContext(ddc::Pool::kCompute);
  const db::QueryResult profile = db::RunQ6(*qctx, *database, {});
  const db::PushdownPlan plan =
      db::AdvisePushdown(profile, db::AdvisorParams{});
  for (const db::OperatorAdvice& a : plan.advice) {
    std::printf("  %-22s save %8.3f ms  cpu penalty %7.3f ms  -> %s\n",
                a.name.c_str(), ToMillis(a.est_remote_saving_ns),
                ToMillis(a.est_cpu_penalty_ns), a.push ? "PUSH" : "keep");
  }

  // --- Act 5: failure handling ---------------------------------------------
  std::printf("\nAct 5: memory-pool failure (S3.2)\n");
  tp::PushdownRuntime runtime(&ms);
  auto caller = ms.CreateContext(ddc::Pool::kCompute);
  ms.fabric().InjectFailureWindow(caller->now());  // pool dies now
  const Status st = runtime.Call(*caller, [&](ddc::ExecutionContext& m) {
    (void)m.Load<int64_t>(data);
    return Status::OK();
  });
  std::printf("  pushdown after failure: %s\n  runtime panicked: %s "
              "(the real kernel would panic: main memory is lost)\n",
              st.ToString().c_str(), runtime.panicked() ? "yes" : "no");
  return st.IsUnavailable() && runtime.panicked() ? 0 : 1;
}
