// Quickstart: the TELEPORT pushdown syscall in five minutes.
//
// Builds a small disaggregated deployment (compute-pool cache in front of a
// remote memory pool), stages an array in the pool, and compares summing it
// (a) from the compute pool through the page cache and (b) pushed down to
// the memory pool with `pushdown(fn, arg, flags)`.

#include <cstdio>

#include "ddc/memory_system.h"
#include "teleport/pushdown.h"

using teleport::Status;
using teleport::ToMillis;
namespace ddc = teleport::ddc;
namespace tp = teleport::tp;

namespace {

struct SumArgs {
  ddc::VAddr data;
  uint64_t count;
  int64_t result;
};

// The function we will Teleport. It runs unchanged in either pool: the
// execution context decides where accesses are charged.
Status SumFn(ddc::ExecutionContext& ctx, void* arg) {
  auto* a = static_cast<SumArgs*>(arg);
  int64_t sum = 0;
  for (uint64_t i = 0; i < a->count; ++i) {
    sum += ctx.Load<int64_t>(a->data + i * 8);
    ctx.ChargeCpu(1);
  }
  a->result = sum;
  return Status::OK();
}

}  // namespace

int main() {
  // A DDC with a 256 KiB compute-local cache -- a small fraction of the
  // 16 MiB working set, as in a high-density deployment (§7).
  ddc::DdcConfig config;
  config.platform = ddc::Platform::kBaseDdc;
  config.compute_cache_bytes = 256 << 10;
  config.memory_pool_bytes = 256 << 20;
  ddc::MemorySystem ms(config, teleport::sim::CostParams::Default(),
                       64 << 20);

  // Allocate and fill 2M integers, then stage them in the memory pool.
  constexpr uint64_t kCount = 2'000'000;
  const ddc::VAddr data = ms.space().Alloc(kCount * 8, "numbers");
  auto* host = static_cast<int64_t*>(ms.space().HostPtr(data, kCount * 8));
  for (uint64_t i = 0; i < kCount; ++i) host[i] = static_cast<int64_t>(i);
  ms.SeedData();

  // (a) Sum from the compute pool: every cold page is a remote fault.
  auto remote_ctx = ms.CreateContext(ddc::Pool::kCompute);
  SumArgs args{data, kCount, 0};
  if (Status st = SumFn(*remote_ctx, &args); !st.ok()) {
    std::fprintf(stderr, "remote scan failed: %s\n", st.ToString().c_str());
    return 1;
  }
  std::printf("compute-pool scan : sum=%lld  time=%.2f ms  remote=%.1f MiB\n",
              static_cast<long long>(args.result),
              ToMillis(remote_ctx->now()),
              static_cast<double>(
                  remote_ctx->metrics().bytes_from_memory_pool) /
                  (1 << 20));

  // (b) The same function, Teleported to the memory pool.
  tp::PushdownRuntime runtime(&ms);
  auto caller = ms.CreateContext(ddc::Pool::kCompute);
  SumArgs pushed{data, kCount, 0};
  if (Status st = runtime.Pushdown(*caller, SumFn, &pushed); !st.ok()) {
    std::fprintf(stderr, "pushdown failed: %s\n", st.ToString().c_str());
    return 1;
  }
  std::printf("pushdown          : sum=%lld  time=%.2f ms  remote=%.1f MiB\n",
              static_cast<long long>(pushed.result), ToMillis(caller->now()),
              static_cast<double>(caller->metrics().bytes_from_memory_pool) /
                  (1 << 20));
  std::printf("speedup           : %.1fx\n",
              static_cast<double>(remote_ctx->now()) /
                  static_cast<double>(caller->now()));
  std::printf("call breakdown    : %s\n",
              runtime.last_breakdown().ToString().c_str());
  return pushed.result == args.result ? 0 : 1;
}
