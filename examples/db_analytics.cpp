// Analytics on a disaggregated DBMS: runs TPC-H-like queries on the three
// deployments the paper compares (monolithic Linux, base DDC, TELEPORT) and
// prints per-operator profiles -- the §5.1 workflow of deciding what to
// push down.

#include <cstdio>
#include <memory>

#include "db/query.h"

using namespace teleport;  // NOLINT: example brevity
using db::QueryOptions;
using db::QueryResult;

namespace {

struct Deployment {
  std::unique_ptr<ddc::MemorySystem> ms;
  std::unique_ptr<db::TpchDatabase> database;
  std::unique_ptr<ddc::ExecutionContext> ctx;
  std::unique_ptr<tp::PushdownRuntime> runtime;
};

Deployment Deploy(ddc::Platform platform) {
  Deployment d;
  db::TpchConfig cfg;
  cfg.scale_factor = 2.0;
  ddc::DdcConfig dc;
  dc.platform = platform;
  const uint64_t bytes = db::EstimateTpchBytes(cfg);
  dc.compute_cache_bytes = bytes / 20;  // 5% of the working set
  dc.memory_pool_bytes = bytes * 8;
  d.ms = std::make_unique<ddc::MemorySystem>(dc, sim::CostParams::Default(),
                                             bytes * 8);
  d.database = db::GenerateTpch(d.ms.get(), cfg);
  d.ctx = d.ms->CreateContext(ddc::Pool::kCompute);
  if (platform == ddc::Platform::kBaseDdc) {
    d.runtime = std::make_unique<tp::PushdownRuntime>(d.ms.get());
  }
  return d;
}

void PrintProfile(const char* label, const QueryResult& r) {
  std::printf("%-22s total %8.2f ms  checksum %lld\n", label,
              ToMillis(r.total_ns), static_cast<long long>(r.checksum));
  for (const auto& op : r.ops) {
    std::printf("    %-20s %8.2f ms  %8.2f MiB remote  %9llu rows%s\n",
                op.name.c_str(), ToMillis(op.time_ns),
                static_cast<double>(op.remote_bytes) / (1 << 20),
                static_cast<unsigned long long>(op.rows_out),
                op.pushed ? "  [pushed]" : "");
  }
}

}  // namespace

int main() {
  std::printf("Generating TPC-H-like data (scale 2.0)...\n\n");

  // Monolithic server: the reference.
  auto local = Deploy(ddc::Platform::kLocal);
  const QueryResult q6_local = db::RunQ6(*local.ctx, *local.database, {});
  PrintProfile("Q6 / Linux", q6_local);

  // Unmodified execution on the disaggregated OS.
  auto base = Deploy(ddc::Platform::kBaseDdc);
  const QueryResult q6_ddc = db::RunQ6(*base.ctx, *base.database, {});
  PrintProfile("Q6 / base DDC", q6_ddc);

  // TELEPORT: push the bandwidth-intensive operators (§5.1).
  auto tele = Deploy(ddc::Platform::kBaseDdc);
  QueryOptions opts;
  opts.runtime = tele.runtime.get();
  opts.push_ops = db::DefaultTeleportOps("q6");
  const QueryResult q6_tele = db::RunQ6(*tele.ctx, *tele.database, opts);
  PrintProfile("Q6 / TELEPORT", q6_tele);

  if (q6_local.checksum != q6_ddc.checksum ||
      q6_local.checksum != q6_tele.checksum) {
    std::fprintf(stderr, "checksum mismatch across deployments!\n");
    return 1;
  }
  std::printf(
      "\ncost of scaling: base DDC %.1fx, TELEPORT %.1fx  (speedup %.1fx)\n",
      static_cast<double>(q6_ddc.total_ns) /
          static_cast<double>(q6_local.total_ns),
      static_cast<double>(q6_tele.total_ns) /
          static_cast<double>(q6_local.total_ns),
      static_cast<double>(q6_ddc.total_ns) /
          static_cast<double>(q6_tele.total_ns));

  // The same comparison for the join-heavy Q9, reusing fresh deployments.
  std::printf("\n");
  auto local9 = Deploy(ddc::Platform::kLocal);
  const QueryResult q9_local = db::RunQ9(*local9.ctx, *local9.database, {});
  auto tele9 = Deploy(ddc::Platform::kBaseDdc);
  QueryOptions opts9;
  opts9.runtime = tele9.runtime.get();
  opts9.push_ops = db::DefaultTeleportOps("q9");
  const QueryResult q9_tele = db::RunQ9(*tele9.ctx, *tele9.database, opts9);
  PrintProfile("Q9 / Linux", q9_local);
  PrintProfile("Q9 / TELEPORT", q9_tele);
  return q9_local.checksum == q9_tele.checksum ? 0 : 1;
}
