file(REMOVE_RECURSE
  "CMakeFiles/mr_wordcount.dir/mr_wordcount.cpp.o"
  "CMakeFiles/mr_wordcount.dir/mr_wordcount.cpp.o.d"
  "mr_wordcount"
  "mr_wordcount.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mr_wordcount.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
