# Empty dependencies file for mr_wordcount.
# This may be replaced when dependencies are built.
