# Empty compiler generated dependencies file for graph_shortest_paths.
# This may be replaced when dependencies are built.
