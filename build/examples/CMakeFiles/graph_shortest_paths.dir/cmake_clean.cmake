file(REMOVE_RECURSE
  "CMakeFiles/graph_shortest_paths.dir/graph_shortest_paths.cpp.o"
  "CMakeFiles/graph_shortest_paths.dir/graph_shortest_paths.cpp.o.d"
  "graph_shortest_paths"
  "graph_shortest_paths.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/graph_shortest_paths.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
