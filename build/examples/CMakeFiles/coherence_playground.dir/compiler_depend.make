# Empty compiler generated dependencies file for coherence_playground.
# This may be replaced when dependencies are built.
