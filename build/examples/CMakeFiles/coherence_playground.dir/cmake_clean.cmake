file(REMOVE_RECURSE
  "CMakeFiles/coherence_playground.dir/coherence_playground.cpp.o"
  "CMakeFiles/coherence_playground.dir/coherence_playground.cpp.o.d"
  "coherence_playground"
  "coherence_playground.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/coherence_playground.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
