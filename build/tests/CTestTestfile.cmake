# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(common_test "/root/repo/build/tests/common_test")
set_tests_properties(common_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;20;add_test;/root/repo/tests/CMakeLists.txt;23;teleport_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(sim_test "/root/repo/build/tests/sim_test")
set_tests_properties(sim_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;20;add_test;/root/repo/tests/CMakeLists.txt;31;teleport_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(net_test "/root/repo/build/tests/net_test")
set_tests_properties(net_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;20;add_test;/root/repo/tests/CMakeLists.txt;37;teleport_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(ddc_test "/root/repo/build/tests/ddc_test")
set_tests_properties(ddc_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;20;add_test;/root/repo/tests/CMakeLists.txt;40;teleport_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(teleport_test "/root/repo/build/tests/teleport_test")
set_tests_properties(teleport_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;20;add_test;/root/repo/tests/CMakeLists.txt;48;teleport_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(db_test "/root/repo/build/tests/db_test")
set_tests_properties(db_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;20;add_test;/root/repo/tests/CMakeLists.txt;56;teleport_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(graph_test "/root/repo/build/tests/graph_test")
set_tests_properties(graph_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;20;add_test;/root/repo/tests/CMakeLists.txt;64;teleport_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(mr_test "/root/repo/build/tests/mr_test")
set_tests_properties(mr_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;20;add_test;/root/repo/tests/CMakeLists.txt;70;teleport_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(dist_test "/root/repo/build/tests/dist_test")
set_tests_properties(dist_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;20;add_test;/root/repo/tests/CMakeLists.txt;74;teleport_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(micro_test "/root/repo/build/tests/micro_test")
set_tests_properties(micro_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;20;add_test;/root/repo/tests/CMakeLists.txt;79;teleport_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(integration_test "/root/repo/build/tests/integration_test")
set_tests_properties(integration_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;20;add_test;/root/repo/tests/CMakeLists.txt;83;teleport_add_test;/root/repo/tests/CMakeLists.txt;0;")
