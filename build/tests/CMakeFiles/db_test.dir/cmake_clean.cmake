file(REMOVE_RECURSE
  "CMakeFiles/db_test.dir/db/advisor_test.cc.o"
  "CMakeFiles/db_test.dir/db/advisor_test.cc.o.d"
  "CMakeFiles/db_test.dir/db/operators_edge_test.cc.o"
  "CMakeFiles/db_test.dir/db/operators_edge_test.cc.o.d"
  "CMakeFiles/db_test.dir/db/operators_test.cc.o"
  "CMakeFiles/db_test.dir/db/operators_test.cc.o.d"
  "CMakeFiles/db_test.dir/db/query_param_test.cc.o"
  "CMakeFiles/db_test.dir/db/query_param_test.cc.o.d"
  "CMakeFiles/db_test.dir/db/query_test.cc.o"
  "CMakeFiles/db_test.dir/db/query_test.cc.o.d"
  "CMakeFiles/db_test.dir/db/tpch_test.cc.o"
  "CMakeFiles/db_test.dir/db/tpch_test.cc.o.d"
  "db_test"
  "db_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/db_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
