file(REMOVE_RECURSE
  "CMakeFiles/mr_test.dir/mr/engine_test.cc.o"
  "CMakeFiles/mr_test.dir/mr/engine_test.cc.o.d"
  "CMakeFiles/mr_test.dir/mr/mr_param_test.cc.o"
  "CMakeFiles/mr_test.dir/mr/mr_param_test.cc.o.d"
  "mr_test"
  "mr_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mr_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
