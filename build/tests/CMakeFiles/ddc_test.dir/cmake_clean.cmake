file(REMOVE_RECURSE
  "CMakeFiles/ddc_test.dir/ddc/address_space_test.cc.o"
  "CMakeFiles/ddc_test.dir/ddc/address_space_test.cc.o.d"
  "CMakeFiles/ddc_test.dir/ddc/cache_policy_test.cc.o"
  "CMakeFiles/ddc_test.dir/ddc/cache_policy_test.cc.o.d"
  "CMakeFiles/ddc_test.dir/ddc/lru_property_test.cc.o"
  "CMakeFiles/ddc_test.dir/ddc/lru_property_test.cc.o.d"
  "CMakeFiles/ddc_test.dir/ddc/memory_system_test.cc.o"
  "CMakeFiles/ddc_test.dir/ddc/memory_system_test.cc.o.d"
  "CMakeFiles/ddc_test.dir/ddc/platform_test.cc.o"
  "CMakeFiles/ddc_test.dir/ddc/platform_test.cc.o.d"
  "CMakeFiles/ddc_test.dir/ddc/prefetch_test.cc.o"
  "CMakeFiles/ddc_test.dir/ddc/prefetch_test.cc.o.d"
  "ddc_test"
  "ddc_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ddc_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
