# Empty dependencies file for ddc_test.
# This may be replaced when dependencies are built.
