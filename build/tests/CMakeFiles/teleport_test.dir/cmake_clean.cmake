file(REMOVE_RECURSE
  "CMakeFiles/teleport_test.dir/teleport/accounting_test.cc.o"
  "CMakeFiles/teleport_test.dir/teleport/accounting_test.cc.o.d"
  "CMakeFiles/teleport_test.dir/teleport/coherence_test.cc.o"
  "CMakeFiles/teleport_test.dir/teleport/coherence_test.cc.o.d"
  "CMakeFiles/teleport_test.dir/teleport/failure_test.cc.o"
  "CMakeFiles/teleport_test.dir/teleport/failure_test.cc.o.d"
  "CMakeFiles/teleport_test.dir/teleport/protocol_table_test.cc.o"
  "CMakeFiles/teleport_test.dir/teleport/protocol_table_test.cc.o.d"
  "CMakeFiles/teleport_test.dir/teleport/pushdown_test.cc.o"
  "CMakeFiles/teleport_test.dir/teleport/pushdown_test.cc.o.d"
  "CMakeFiles/teleport_test.dir/teleport/sync_test.cc.o"
  "CMakeFiles/teleport_test.dir/teleport/sync_test.cc.o.d"
  "teleport_test"
  "teleport_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/teleport_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
