# Empty dependencies file for teleport_test.
# This may be replaced when dependencies are built.
