# Empty compiler generated dependencies file for bench_fig17_parallel_contexts.
# This may be replaced when dependencies are built.
