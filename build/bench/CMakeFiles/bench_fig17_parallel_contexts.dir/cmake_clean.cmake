file(REMOVE_RECURSE
  "CMakeFiles/bench_fig17_parallel_contexts.dir/bench_fig17_parallel_contexts.cc.o"
  "CMakeFiles/bench_fig17_parallel_contexts.dir/bench_fig17_parallel_contexts.cc.o.d"
  "bench_fig17_parallel_contexts"
  "bench_fig17_parallel_contexts.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig17_parallel_contexts.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
