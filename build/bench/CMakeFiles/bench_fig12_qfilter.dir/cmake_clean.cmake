file(REMOVE_RECURSE
  "CMakeFiles/bench_fig12_qfilter.dir/bench_fig12_qfilter.cc.o"
  "CMakeFiles/bench_fig12_qfilter.dir/bench_fig12_qfilter.cc.o.d"
  "bench_fig12_qfilter"
  "bench_fig12_qfilter.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig12_qfilter.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
