# Empty compiler generated dependencies file for bench_fig11_pushdown_inventory.
# This may be replaced when dependencies are built.
