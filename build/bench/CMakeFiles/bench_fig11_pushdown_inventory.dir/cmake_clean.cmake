file(REMOVE_RECURSE
  "CMakeFiles/bench_fig11_pushdown_inventory.dir/bench_fig11_pushdown_inventory.cc.o"
  "CMakeFiles/bench_fig11_pushdown_inventory.dir/bench_fig11_pushdown_inventory.cc.o.d"
  "bench_fig11_pushdown_inventory"
  "bench_fig11_pushdown_inventory.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11_pushdown_inventory.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
