# Empty dependencies file for bench_fig14_ssd_vs_ddc.
# This may be replaced when dependencies are built.
