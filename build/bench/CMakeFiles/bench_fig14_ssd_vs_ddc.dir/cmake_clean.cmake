file(REMOVE_RECURSE
  "CMakeFiles/bench_fig14_ssd_vs_ddc.dir/bench_fig14_ssd_vs_ddc.cc.o"
  "CMakeFiles/bench_fig14_ssd_vs_ddc.dir/bench_fig14_ssd_vs_ddc.cc.o.d"
  "bench_fig14_ssd_vs_ddc"
  "bench_fig14_ssd_vs_ddc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig14_ssd_vs_ddc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
