# Empty dependencies file for bench_fig13_suite.
# This may be replaced when dependencies are built.
