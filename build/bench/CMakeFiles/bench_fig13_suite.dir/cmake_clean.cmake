file(REMOVE_RECURSE
  "CMakeFiles/bench_fig13_suite.dir/bench_fig13_suite.cc.o"
  "CMakeFiles/bench_fig13_suite.dir/bench_fig13_suite.cc.o.d"
  "bench_fig13_suite"
  "bench_fig13_suite.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig13_suite.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
