# Empty compiler generated dependencies file for bench_ablation_rle.
# This may be replaced when dependencies are built.
