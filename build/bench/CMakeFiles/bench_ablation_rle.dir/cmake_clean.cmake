file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_rle.dir/bench_ablation_rle.cc.o"
  "CMakeFiles/bench_ablation_rle.dir/bench_ablation_rle.cc.o.d"
  "bench_ablation_rle"
  "bench_ablation_rle.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_rle.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
