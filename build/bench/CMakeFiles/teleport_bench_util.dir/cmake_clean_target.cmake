file(REMOVE_RECURSE
  "libteleport_bench_util.a"
)
