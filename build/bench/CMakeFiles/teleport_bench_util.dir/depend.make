# Empty dependencies file for teleport_bench_util.
# This may be replaced when dependencies are built.
