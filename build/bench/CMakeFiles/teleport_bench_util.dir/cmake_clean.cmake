file(REMOVE_RECURSE
  "CMakeFiles/teleport_bench_util.dir/bench_util.cc.o"
  "CMakeFiles/teleport_bench_util.dir/bench_util.cc.o.d"
  "CMakeFiles/teleport_bench_util.dir/micro.cc.o"
  "CMakeFiles/teleport_bench_util.dir/micro.cc.o.d"
  "libteleport_bench_util.a"
  "libteleport_bench_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/teleport_bench_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
