# Empty compiler generated dependencies file for bench_fig18_pushdown_level.
# This may be replaced when dependencies are built.
