file(REMOVE_RECURSE
  "CMakeFiles/bench_fig18_pushdown_level.dir/bench_fig18_pushdown_level.cc.o"
  "CMakeFiles/bench_fig18_pushdown_level.dir/bench_fig18_pushdown_level.cc.o.d"
  "bench_fig18_pushdown_level"
  "bench_fig18_pushdown_level.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig18_pushdown_level.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
