# Empty dependencies file for bench_fig06_sync_ablation.
# This may be replaced when dependencies are built.
