# Empty dependencies file for bench_fig03_ddc_overhead.
# This may be replaced when dependencies are built.
