# Empty compiler generated dependencies file for bench_fig01_ddc_benefits.
# This may be replaced when dependencies are built.
