# Empty dependencies file for bench_fig21_contention.
# This may be replaced when dependencies are built.
