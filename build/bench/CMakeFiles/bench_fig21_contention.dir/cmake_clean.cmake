file(REMOVE_RECURSE
  "CMakeFiles/bench_fig21_contention.dir/bench_fig21_contention.cc.o"
  "CMakeFiles/bench_fig21_contention.dir/bench_fig21_contention.cc.o.d"
  "bench_fig21_contention"
  "bench_fig21_contention.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig21_contention.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
