
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_fig22_coherence_msgs.cc" "bench/CMakeFiles/bench_fig22_coherence_msgs.dir/bench_fig22_coherence_msgs.cc.o" "gcc" "bench/CMakeFiles/bench_fig22_coherence_msgs.dir/bench_fig22_coherence_msgs.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/teleport/CMakeFiles/teleport_core.dir/DependInfo.cmake"
  "/root/repo/build/src/ddc/CMakeFiles/teleport_ddc.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/teleport_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/teleport_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/teleport_common.dir/DependInfo.cmake"
  "/root/repo/build/src/db/CMakeFiles/teleport_db.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/teleport_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/mr/CMakeFiles/teleport_mr.dir/DependInfo.cmake"
  "/root/repo/build/src/dist/CMakeFiles/teleport_dist.dir/DependInfo.cmake"
  "/root/repo/build/bench/CMakeFiles/teleport_bench_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
