file(REMOVE_RECURSE
  "CMakeFiles/bench_fig22_coherence_msgs.dir/bench_fig22_coherence_msgs.cc.o"
  "CMakeFiles/bench_fig22_coherence_msgs.dir/bench_fig22_coherence_msgs.cc.o.d"
  "bench_fig22_coherence_msgs"
  "bench_fig22_coherence_msgs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig22_coherence_msgs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
