# Empty dependencies file for bench_fig22_coherence_msgs.
# This may be replaced when dependencies are built.
