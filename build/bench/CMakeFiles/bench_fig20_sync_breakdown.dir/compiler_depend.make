# Empty compiler generated dependencies file for bench_fig20_sync_breakdown.
# This may be replaced when dependencies are built.
