file(REMOVE_RECURSE
  "CMakeFiles/teleport_mr.dir/engine.cc.o"
  "CMakeFiles/teleport_mr.dir/engine.cc.o.d"
  "CMakeFiles/teleport_mr.dir/text.cc.o"
  "CMakeFiles/teleport_mr.dir/text.cc.o.d"
  "libteleport_mr.a"
  "libteleport_mr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/teleport_mr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
