# Empty dependencies file for teleport_mr.
# This may be replaced when dependencies are built.
