file(REMOVE_RECURSE
  "libteleport_mr.a"
)
