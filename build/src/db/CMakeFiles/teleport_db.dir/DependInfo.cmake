
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/db/advisor.cc" "src/db/CMakeFiles/teleport_db.dir/advisor.cc.o" "gcc" "src/db/CMakeFiles/teleport_db.dir/advisor.cc.o.d"
  "/root/repo/src/db/operators.cc" "src/db/CMakeFiles/teleport_db.dir/operators.cc.o" "gcc" "src/db/CMakeFiles/teleport_db.dir/operators.cc.o.d"
  "/root/repo/src/db/query.cc" "src/db/CMakeFiles/teleport_db.dir/query.cc.o" "gcc" "src/db/CMakeFiles/teleport_db.dir/query.cc.o.d"
  "/root/repo/src/db/tpch.cc" "src/db/CMakeFiles/teleport_db.dir/tpch.cc.o" "gcc" "src/db/CMakeFiles/teleport_db.dir/tpch.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/teleport/CMakeFiles/teleport_core.dir/DependInfo.cmake"
  "/root/repo/build/src/ddc/CMakeFiles/teleport_ddc.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/teleport_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/teleport_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/teleport_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
