file(REMOVE_RECURSE
  "libteleport_db.a"
)
