file(REMOVE_RECURSE
  "CMakeFiles/teleport_db.dir/advisor.cc.o"
  "CMakeFiles/teleport_db.dir/advisor.cc.o.d"
  "CMakeFiles/teleport_db.dir/operators.cc.o"
  "CMakeFiles/teleport_db.dir/operators.cc.o.d"
  "CMakeFiles/teleport_db.dir/query.cc.o"
  "CMakeFiles/teleport_db.dir/query.cc.o.d"
  "CMakeFiles/teleport_db.dir/tpch.cc.o"
  "CMakeFiles/teleport_db.dir/tpch.cc.o.d"
  "libteleport_db.a"
  "libteleport_db.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/teleport_db.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
