# Empty compiler generated dependencies file for teleport_db.
# This may be replaced when dependencies are built.
