# Empty dependencies file for teleport_ddc.
# This may be replaced when dependencies are built.
