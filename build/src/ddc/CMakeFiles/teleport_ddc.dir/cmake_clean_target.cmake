file(REMOVE_RECURSE
  "libteleport_ddc.a"
)
