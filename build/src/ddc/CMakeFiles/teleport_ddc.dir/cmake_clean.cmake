file(REMOVE_RECURSE
  "CMakeFiles/teleport_ddc.dir/address_space.cc.o"
  "CMakeFiles/teleport_ddc.dir/address_space.cc.o.d"
  "CMakeFiles/teleport_ddc.dir/memory_system.cc.o"
  "CMakeFiles/teleport_ddc.dir/memory_system.cc.o.d"
  "libteleport_ddc.a"
  "libteleport_ddc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/teleport_ddc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
