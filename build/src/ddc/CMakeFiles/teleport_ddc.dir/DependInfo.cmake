
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ddc/address_space.cc" "src/ddc/CMakeFiles/teleport_ddc.dir/address_space.cc.o" "gcc" "src/ddc/CMakeFiles/teleport_ddc.dir/address_space.cc.o.d"
  "/root/repo/src/ddc/memory_system.cc" "src/ddc/CMakeFiles/teleport_ddc.dir/memory_system.cc.o" "gcc" "src/ddc/CMakeFiles/teleport_ddc.dir/memory_system.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/net/CMakeFiles/teleport_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/teleport_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/teleport_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
