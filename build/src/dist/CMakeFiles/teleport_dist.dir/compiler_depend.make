# Empty compiler generated dependencies file for teleport_dist.
# This may be replaced when dependencies are built.
