file(REMOVE_RECURSE
  "libteleport_dist.a"
)
