file(REMOVE_RECURSE
  "CMakeFiles/teleport_dist.dir/cost_model.cc.o"
  "CMakeFiles/teleport_dist.dir/cost_model.cc.o.d"
  "libteleport_dist.a"
  "libteleport_dist.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/teleport_dist.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
