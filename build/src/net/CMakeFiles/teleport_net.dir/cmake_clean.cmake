file(REMOVE_RECURSE
  "CMakeFiles/teleport_net.dir/fabric.cc.o"
  "CMakeFiles/teleport_net.dir/fabric.cc.o.d"
  "libteleport_net.a"
  "libteleport_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/teleport_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
