file(REMOVE_RECURSE
  "libteleport_net.a"
)
