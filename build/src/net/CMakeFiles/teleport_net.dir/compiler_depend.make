# Empty compiler generated dependencies file for teleport_net.
# This may be replaced when dependencies are built.
