file(REMOVE_RECURSE
  "libteleport_core.a"
)
