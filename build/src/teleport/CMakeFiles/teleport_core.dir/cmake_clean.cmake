file(REMOVE_RECURSE
  "CMakeFiles/teleport_core.dir/pushdown.cc.o"
  "CMakeFiles/teleport_core.dir/pushdown.cc.o.d"
  "libteleport_core.a"
  "libteleport_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/teleport_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
