# Empty dependencies file for teleport_core.
# This may be replaced when dependencies are built.
