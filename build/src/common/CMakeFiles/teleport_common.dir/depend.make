# Empty dependencies file for teleport_common.
# This may be replaced when dependencies are built.
