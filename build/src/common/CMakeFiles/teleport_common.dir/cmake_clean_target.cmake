file(REMOVE_RECURSE
  "libteleport_common.a"
)
