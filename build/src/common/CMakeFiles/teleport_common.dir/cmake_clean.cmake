file(REMOVE_RECURSE
  "CMakeFiles/teleport_common.dir/histogram.cc.o"
  "CMakeFiles/teleport_common.dir/histogram.cc.o.d"
  "CMakeFiles/teleport_common.dir/logging.cc.o"
  "CMakeFiles/teleport_common.dir/logging.cc.o.d"
  "CMakeFiles/teleport_common.dir/rle.cc.o"
  "CMakeFiles/teleport_common.dir/rle.cc.o.d"
  "CMakeFiles/teleport_common.dir/rng.cc.o"
  "CMakeFiles/teleport_common.dir/rng.cc.o.d"
  "CMakeFiles/teleport_common.dir/status.cc.o"
  "CMakeFiles/teleport_common.dir/status.cc.o.d"
  "libteleport_common.a"
  "libteleport_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/teleport_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
