file(REMOVE_RECURSE
  "libteleport_sim.a"
)
