file(REMOVE_RECURSE
  "CMakeFiles/teleport_sim.dir/interleaver.cc.o"
  "CMakeFiles/teleport_sim.dir/interleaver.cc.o.d"
  "CMakeFiles/teleport_sim.dir/metrics.cc.o"
  "CMakeFiles/teleport_sim.dir/metrics.cc.o.d"
  "libteleport_sim.a"
  "libteleport_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/teleport_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
