# Empty compiler generated dependencies file for teleport_sim.
# This may be replaced when dependencies are built.
