# Empty compiler generated dependencies file for teleport_graph.
# This may be replaced when dependencies are built.
