file(REMOVE_RECURSE
  "libteleport_graph.a"
)
