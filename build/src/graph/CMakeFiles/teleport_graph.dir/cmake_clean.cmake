file(REMOVE_RECURSE
  "CMakeFiles/teleport_graph.dir/engine.cc.o"
  "CMakeFiles/teleport_graph.dir/engine.cc.o.d"
  "CMakeFiles/teleport_graph.dir/graph.cc.o"
  "CMakeFiles/teleport_graph.dir/graph.cc.o.d"
  "libteleport_graph.a"
  "libteleport_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/teleport_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
